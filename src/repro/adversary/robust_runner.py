"""Running consensus processes against a dynamic adversary.

The execution model of §5: in each round the honest synchronous protocol
step happens first (all samples observe the pre-round state), then the
adversary rewrites the colors of at most ``F`` nodes.  The run tracks

* the set of **valid** colors (those with initial honest support),
* whether an *almost-all* consensus regime is reached: at least a
  ``1 − ε`` fraction of nodes on one valid color, and
* whether validity is ever violated at stabilisation (the failure mode of
  2-Median under :class:`~repro.adversary.adversary.PlantInvalid`).

Two execution paths:

* :func:`run_with_adversary` — one replica, the sequential reference.
* :func:`run_with_adversary_ensemble` — ``R`` replicas lock-step with
  vectorized per-replica corruption masks, plurality/streak tracking and
  replica retirement.  ``backend="counts"`` additionally moves the whole
  run onto the exact count-level chain (AC-processes with a count-capable
  adversary), which is the production fast path;
  ``rng_mode="per-replica"`` reproduces the sequential runner bit-for-bit
  (one spawned stream per replica, consumed identically).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.configuration import Configuration
from ..engine.ensemble import _counts_matrix_fast, narrow_int_dtype
from ..engine.kernels import fused_colors_step, kernel_eligible
from ..engine.rng import RandomSource, as_generator, per_replica_generators
from ..engine.simulator import _COUNT_BACKEND_SLOT_LIMIT
from ..processes.base import ACAgentProcess, AgentProcess
from .adversary import Adversary, AdversarySchedule

__all__ = [
    "RobustRunResult",
    "RobustEnsembleResult",
    "run_with_adversary",
    "run_with_adversary_ensemble",
]


@dataclass
class RobustRunResult:
    """Outcome of a run under adversarial corruption."""

    process_name: str
    adversary_repr: str
    rounds: int
    stabilized: bool
    winning_color: "int | None"
    winning_fraction: float
    winner_is_valid: bool
    valid_colors: frozenset

    @property
    def valid_almost_all_consensus(self) -> bool:
        """The §5 success criterion: stabilised on a *valid* color."""
        return self.stabilized and self.winner_is_valid


def run_with_adversary(
    process: AgentProcess,
    initial: Configuration,
    adversary: "Adversary | AdversarySchedule",
    rng: RandomSource = None,
    max_rounds: int = 50_000,
    stable_fraction: float = 0.95,
    stable_rounds: int = 3,
) -> RobustRunResult:
    """Run ``process`` under ``adversary`` until almost-all consensus holds.

    Stabilisation requires a single color to hold at least
    ``stable_fraction`` of the nodes for ``stable_rounds`` consecutive
    rounds (a finite-run stand-in for the paper's "stable regime").
    Returns a result even when the horizon is exhausted
    (``stabilized=False``) so experiments can report stalling adversaries.
    """
    if not 0.5 < stable_fraction <= 1.0:
        raise ValueError("stable_fraction must lie in (0.5, 1]")
    if stable_rounds < 1:
        raise ValueError("stable_rounds must be positive")
    generator = as_generator(rng)
    schedule = (
        adversary
        if isinstance(adversary, AdversarySchedule)
        else AdversarySchedule(adversary)
    )
    colors = process.initial_colors(initial)
    valid_colors = frozenset(int(c) for c in np.unique(colors))
    n = colors.size
    streak = 0
    rounds = 0
    leader, fraction = _plurality(colors)
    while rounds < max_rounds:
        colors = process.update(colors, generator)
        colors = schedule.corrupt(rounds, colors, generator)
        rounds += 1
        leader, fraction = _plurality(colors)
        if fraction >= stable_fraction:
            streak += 1
            if streak >= stable_rounds:
                return RobustRunResult(
                    process_name=process.name,
                    adversary_repr=repr(schedule.adversary),
                    rounds=rounds,
                    stabilized=True,
                    winning_color=leader,
                    winning_fraction=fraction,
                    winner_is_valid=leader in valid_colors,
                    valid_colors=valid_colors,
                )
        else:
            streak = 0
    return RobustRunResult(
        process_name=process.name,
        adversary_repr=repr(schedule.adversary),
        rounds=rounds,
        stabilized=False,
        winning_color=leader,
        winning_fraction=fraction,
        winner_is_valid=leader in valid_colors,
        valid_colors=valid_colors,
    )


def _plurality(colors: np.ndarray) -> "tuple[int, float]":
    """The plurality color and its fraction, ignoring negative sentinels."""
    decided = colors[colors >= 0]
    if decided.size == 0:
        return -1, 0.0
    counts = np.bincount(decided)
    leader = int(np.argmax(counts))
    return leader, float(counts[leader] / colors.size)


@dataclass
class RobustEnsembleResult:
    """Per-replica outcomes of a lock-step adversarial ensemble run."""

    process_name: str
    adversary_repr: str
    #: ``(R,)`` stabilisation round per replica (the horizon if never).
    rounds: np.ndarray
    #: ``(R,)`` mask — did the replica reach the stable regime?
    stabilized: np.ndarray
    #: ``(R,)`` plurality color at stabilisation (or at the horizon).
    winning_color: np.ndarray
    #: ``(R,)`` plurality fraction at stabilisation (or at the horizon).
    winning_fraction: np.ndarray
    #: ``(R,)`` mask — is the winner one of the initially supported colors?
    winner_is_valid: np.ndarray
    valid_colors: frozenset
    backend: str
    rng_mode: str

    @property
    def repetitions(self) -> int:
        return int(self.rounds.size)

    @property
    def all_stabilized(self) -> bool:
        return bool(np.all(self.stabilized))

    @property
    def valid_almost_all_consensus(self) -> np.ndarray:
        """Per-replica §5 success mask: stabilised on a *valid* color."""
        return self.stabilized & self.winner_is_valid

    def results(self) -> "list[RobustRunResult]":
        """The per-replica outcomes as :class:`RobustRunResult` objects."""
        return [
            RobustRunResult(
                process_name=self.process_name,
                adversary_repr=self.adversary_repr,
                rounds=int(self.rounds[r]),
                stabilized=bool(self.stabilized[r]),
                winning_color=int(self.winning_color[r]),
                winning_fraction=float(self.winning_fraction[r]),
                winner_is_valid=bool(self.winner_is_valid[r]),
                valid_colors=self.valid_colors,
            )
            for r in range(self.repetitions)
        ]


def _plurality_matrix(
    colors: np.ndarray, width: int, n: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Row-wise plurality of an ``(R, n)`` color matrix in one pass.

    Returns ``(counts, leaders, fractions)``; negative sentinel colors are
    excluded from the counts (matching :func:`_plurality`) by shifting all
    colors up one slot and dropping the sentinel column.
    """
    shifted = np.maximum(colors.astype(np.int64, copy=False), -1) + 1
    counts = _counts_matrix_fast(shifted, width + 1)[:, 1:]
    leaders = np.argmax(counts, axis=1)
    fractions = counts[np.arange(colors.shape[0]), leaders] / float(n)
    return counts, leaders, fractions


def run_with_adversary_ensemble(
    process: AgentProcess,
    initial: Configuration,
    adversary: "Adversary | AdversarySchedule",
    repetitions: int,
    rng: RandomSource = None,
    max_rounds: int = 50_000,
    stable_fraction: float = 0.95,
    stable_rounds: int = 3,
    backend: str = "auto",
    rng_mode: str = "batched",
) -> RobustEnsembleResult:
    """``R`` independent adversarial runs advanced lock-step.

    ``backend`` picks the state representation:

    * ``"agent"`` — an ``(R, n)`` color matrix: the honest step is the
      process's batched ``update_ensemble`` (per-replica loop fallback for
      processes without one), corruption a vectorized per-replica mask.
      Faithful for every process/adversary pair.
    * ``"counts"`` — an ``(R, k)`` counts matrix: the honest step is one
      broadcast ``Mult(n, α(c))`` draw, corruption the adversary's exact
      count-level law (multivariate-hypergeometric victim draws).  Valid
      for AC-processes with a count-capable adversary, and faster by the
      same margin as the synchronous counts ensemble (node identity is
      meaningless under anonymity, so the two backends induce the same
      process on counts).
    * ``"auto"`` — ``"counts"`` whenever it is valid, else ``"agent"``.

    ``rng_mode="per-replica"`` forces the agent backend with one spawned
    child generator per replica, consumed exactly as
    :func:`run_with_adversary` would — the ensemble then reproduces the
    sequential results bit-for-bit (the test-suite verifies).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    if not 0.5 < stable_fraction <= 1.0:
        raise ValueError("stable_fraction must lie in (0.5, 1]")
    if stable_rounds < 1:
        raise ValueError("stable_rounds must be positive")
    if rng_mode not in ("batched", "per-replica"):
        raise ValueError(f"unknown rng_mode {rng_mode!r}")
    schedule = (
        adversary
        if isinstance(adversary, AdversarySchedule)
        else AdversarySchedule(adversary)
    )
    counts_capable = (
        isinstance(process, ACAgentProcess)
        and schedule.adversary.supports_counts
        and type(process).initial_colors is AgentProcess.initial_colors
        and process.supports_count_backend(initial)
    )
    if backend == "auto":
        # Mirror the shared engine dispatch rule: the exact chain must be
        # tractable (supports_count_backend) and the slot space moderate —
        # including any extra slots the adversary can write into.
        backend = (
            "counts"
            if (
                counts_capable
                and rng_mode == "batched"
                and schedule.adversary.color_ceiling(initial.num_slots)
                <= _COUNT_BACKEND_SLOT_LIMIT
            )
            else "agent"
        )
    if backend not in ("agent", "counts"):
        raise ValueError(f"unknown backend {backend!r}")
    if backend == "counts":
        if not counts_capable:
            raise TypeError(
                "count-level adversarial runs need an AC-process and an "
                f"adversary with a count-level law; got {process.name} vs "
                f"{schedule.adversary!r}"
            )
        if rng_mode != "batched":
            raise ValueError(
                "rng_mode='per-replica' reproduces the sequential agent-"
                "level runner; use backend='agent'"
            )
        return _adversary_counts_ensemble(
            process, initial, schedule, repetitions, rng,
            max_rounds, stable_fraction, stable_rounds,
        )
    return _adversary_agent_ensemble(
        process, initial, schedule, repetitions, rng,
        max_rounds, stable_fraction, stable_rounds, rng_mode,
    )


def _finalize_robust(
    process: AgentProcess,
    schedule: AdversarySchedule,
    valid_colors: frozenset,
    backend: str,
    rng_mode: str,
    rounds: np.ndarray,
    stabilized: np.ndarray,
    winning_color: np.ndarray,
    winning_fraction: np.ndarray,
) -> RobustEnsembleResult:
    valid_array = np.asarray(sorted(valid_colors), dtype=np.int64)
    winner_is_valid = np.isin(winning_color, valid_array)
    return RobustEnsembleResult(
        process_name=process.name,
        adversary_repr=repr(schedule.adversary),
        rounds=rounds,
        stabilized=stabilized,
        winning_color=winning_color,
        winning_fraction=winning_fraction,
        winner_is_valid=winner_is_valid,
        valid_colors=valid_colors,
        backend=backend,
        rng_mode=rng_mode,
    )


def _streak_retire(
    stable_fraction: float,
    stable_rounds: int,
    rounds: int,
    streak: np.ndarray,
    active: np.ndarray,
    state: np.ndarray,
    leaders: np.ndarray,
    fractions: np.ndarray,
    rounds_out: np.ndarray,
    stabilized: np.ndarray,
    winning_color: np.ndarray,
    winning_fraction: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Shared stabilisation bookkeeping of both adversary backends.

    Bumps each active replica's stable-streak counter, records the ones
    whose streak just reached ``stable_rounds``, and compacts them out of
    ``(active, state, leaders, fractions)`` — ``state`` being whichever
    matrix the backend advances (colors or counts).
    """
    stable_now = fractions >= stable_fraction
    streak_active = np.where(stable_now, streak[active] + 1, 0)
    streak[active] = streak_active
    mask = streak_active >= stable_rounds
    if not mask.any():
        return active, state, leaders, fractions
    done = active[mask]
    rounds_out[done] = rounds
    stabilized[done] = True
    winning_color[done] = leaders[mask]
    winning_fraction[done] = fractions[mask]
    keep = ~mask
    return active[keep], state[keep], leaders[keep], fractions[keep]


def _adversary_agent_ensemble(
    process: AgentProcess,
    initial: Configuration,
    schedule: AdversarySchedule,
    repetitions: int,
    rng: RandomSource,
    max_rounds: int,
    stable_fraction: float,
    stable_rounds: int,
    rng_mode: str,
) -> RobustEnsembleResult:
    """Lock-step ``(R, n)`` adversarial runs with replica retirement."""
    n = initial.num_nodes
    width = schedule.adversary.color_ceiling(initial.num_slots)
    batched = process.has_vectorized_ensemble and rng_mode == "batched"
    # The honest step through the fused colors kernel — identically
    # distributed to update_ensemble (every node redraws by the process's
    # switch-and-redistribute law, iid given the counts), but one
    # inverse-cdf draw per node instead of per-node sample gathers.  The
    # corruption step is untouched: it needs node identities and gets them.
    fused = batched and kernel_eligible(process, initial)
    if batched:
        generators = None
        master = as_generator(rng)
    else:
        # per_replica_generators honours pre-derived stream lists, so the
        # runtime's generic sharding hands each worker its replicas'
        # global stream identities (worker-count-invariant results).
        rng_mode = "per-replica"
        generators = per_replica_generators(rng, repetitions)
        master = None

    base = process.initial_colors(initial)
    valid_colors = frozenset(int(c) for c in np.unique(base))
    dtype = narrow_int_dtype(max(n, width + 1))
    colors = np.tile(base.astype(dtype, copy=False), (repetitions, 1))

    rounds_out = np.full(repetitions, max_rounds, dtype=np.int64)
    stabilized = np.zeros(repetitions, dtype=bool)
    winning_color = np.empty(repetitions, dtype=np.int64)
    winning_fraction = np.empty(repetitions, dtype=float)
    streak = np.zeros(repetitions, dtype=np.int64)
    active = np.arange(repetitions)

    _, leaders, fractions = _plurality_matrix(colors, width, n)
    rounds = 0
    while active.size and rounds < max_rounds:
        if fused:
            # Corruption can have planted ids past the static ceiling;
            # the kernel's bincount width must cover whatever is present.
            width_now = max(width, int(colors.max()) + 1)
            colors = fused_colors_step(process, colors, width_now, master)
            colors = schedule.corrupt_ensemble(rounds, colors, master)
        elif batched:
            colors = process.update_ensemble(colors, master)
            colors = schedule.corrupt_ensemble(rounds, colors, master)
        else:
            for row, replica in enumerate(active):
                updated = process.update(colors[row], generators[replica])
                colors[row] = schedule.corrupt(
                    rounds, updated, generators[replica]
                )
        rounds += 1
        # BoostRunnerUp can resurrect fresh color ids past the static
        # ceiling in long stalls (consensus on c resurrects c+1, which may
        # itself win); widen the transient counts to whatever is present.
        width_now = max(width, int(colors.max()) + 1)
        _, leaders, fractions = _plurality_matrix(colors, width_now, n)
        active, colors, leaders, fractions = _streak_retire(
            stable_fraction, stable_rounds, rounds,
            streak, active, colors, leaders, fractions,
            rounds_out, stabilized, winning_color, winning_fraction,
        )
    if active.size:
        winning_color[active] = leaders
        winning_fraction[active] = fractions
        rounds_out[active] = rounds
    return _finalize_robust(
        process, schedule, valid_colors, "agent", rng_mode,
        rounds_out, stabilized, winning_color, winning_fraction,
    )


def _adversary_counts_ensemble(
    process: "ACAgentProcess",
    initial: Configuration,
    schedule: AdversarySchedule,
    repetitions: int,
    rng: RandomSource,
    max_rounds: int,
    stable_fraction: float,
    stable_rounds: int,
) -> RobustEnsembleResult:
    """Exact count-level adversarial chain for AC-processes."""
    n = initial.num_nodes
    width = schedule.adversary.color_ceiling(initial.num_slots)
    master = as_generator(rng)

    base = initial.counts_array()
    valid_colors = frozenset(int(c) for c in np.flatnonzero(base))
    counts = np.zeros((repetitions, width), dtype=np.int64)
    counts[:, : base.size] = base

    rounds_out = np.full(repetitions, max_rounds, dtype=np.int64)
    stabilized = np.zeros(repetitions, dtype=bool)
    winning_color = np.empty(repetitions, dtype=np.int64)
    winning_fraction = np.empty(repetitions, dtype=float)
    streak = np.zeros(repetitions, dtype=np.int64)
    active = np.arange(repetitions)

    leaders = np.argmax(counts, axis=1)
    fractions = counts[np.arange(repetitions), leaders] / float(n)
    rounds = 0
    while active.size and rounds < max_rounds:
        counts = process.step_counts_ensemble(counts, master)
        counts = schedule.corrupt_counts(rounds, counts, master)
        rounds += 1
        rows = np.arange(active.size)
        leaders = np.argmax(counts, axis=1)
        fractions = counts[rows, leaders] / float(n)
        active, counts, leaders, fractions = _streak_retire(
            stable_fraction, stable_rounds, rounds,
            streak, active, counts, leaders, fractions,
            rounds_out, stabilized, winning_color, winning_fraction,
        )
    if active.size:
        winning_color[active] = leaders
        winning_fraction[active] = fractions
        rounds_out[active] = rounds
    return _finalize_robust(
        process, schedule, valid_colors, "counts", "batched",
        rounds_out, stabilized, winning_color, winning_fraction,
    )
