"""Running consensus processes against a dynamic adversary.

The execution model of §5: in each round the honest synchronous protocol
step happens first (all samples observe the pre-round state), then the
adversary rewrites the colors of at most ``F`` nodes.  The run tracks

* the set of **valid** colors (those with initial honest support),
* whether an *almost-all* consensus regime is reached: at least a
  ``1 − ε`` fraction of nodes on one valid color, and
* whether validity is ever violated at stabilisation (the failure mode of
  2-Median under :class:`~repro.adversary.adversary.PlantInvalid`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.configuration import Configuration
from ..engine.rng import RandomSource, as_generator
from ..processes.base import AgentProcess
from .adversary import Adversary, AdversarySchedule

__all__ = ["RobustRunResult", "run_with_adversary"]


@dataclass
class RobustRunResult:
    """Outcome of a run under adversarial corruption."""

    process_name: str
    adversary_repr: str
    rounds: int
    stabilized: bool
    winning_color: "int | None"
    winning_fraction: float
    winner_is_valid: bool
    valid_colors: frozenset

    @property
    def valid_almost_all_consensus(self) -> bool:
        """The §5 success criterion: stabilised on a *valid* color."""
        return self.stabilized and self.winner_is_valid


def run_with_adversary(
    process: AgentProcess,
    initial: Configuration,
    adversary: "Adversary | AdversarySchedule",
    rng: RandomSource = None,
    max_rounds: int = 50_000,
    stable_fraction: float = 0.95,
    stable_rounds: int = 3,
) -> RobustRunResult:
    """Run ``process`` under ``adversary`` until almost-all consensus holds.

    Stabilisation requires a single color to hold at least
    ``stable_fraction`` of the nodes for ``stable_rounds`` consecutive
    rounds (a finite-run stand-in for the paper's "stable regime").
    Returns a result even when the horizon is exhausted
    (``stabilized=False``) so experiments can report stalling adversaries.
    """
    if not 0.5 < stable_fraction <= 1.0:
        raise ValueError("stable_fraction must lie in (0.5, 1]")
    if stable_rounds < 1:
        raise ValueError("stable_rounds must be positive")
    generator = as_generator(rng)
    schedule = (
        adversary
        if isinstance(adversary, AdversarySchedule)
        else AdversarySchedule(adversary)
    )
    colors = process.initial_colors(initial)
    valid_colors = frozenset(int(c) for c in np.unique(colors))
    n = colors.size
    streak = 0
    rounds = 0
    leader, fraction = _plurality(colors)
    while rounds < max_rounds:
        colors = process.update(colors, generator)
        colors = schedule.corrupt(rounds, colors, generator)
        rounds += 1
        leader, fraction = _plurality(colors)
        if fraction >= stable_fraction:
            streak += 1
            if streak >= stable_rounds:
                return RobustRunResult(
                    process_name=process.name,
                    adversary_repr=repr(schedule.adversary),
                    rounds=rounds,
                    stabilized=True,
                    winning_color=leader,
                    winning_fraction=fraction,
                    winner_is_valid=leader in valid_colors,
                    valid_colors=valid_colors,
                )
        else:
            streak = 0
    return RobustRunResult(
        process_name=process.name,
        adversary_repr=repr(schedule.adversary),
        rounds=rounds,
        stabilized=False,
        winning_color=leader,
        winning_fraction=fraction,
        winner_is_valid=leader in valid_colors,
        valid_colors=valid_colors,
    )


def _plurality(colors: np.ndarray) -> "tuple[int, float]":
    """The plurality color and its fraction, ignoring negative sentinels."""
    decided = colors[colors >= 0]
    if decided.size == 0:
        return -1, 0.0
    counts = np.bincount(decided)
    leader = int(np.argmax(counts))
    return leader, float(counts[leader] / colors.size)
