"""Spectral quantities behind the §1.1 Voter-model bounds.

The related-work bounds the paper quotes for Voter on general graphs are

* [CEOR13]: expected coalescence time ``O(μ⁻¹ (log⁴ n + ρ))`` where
  ``μ`` is the spectral gap of the pull walk and
  ``ρ = (d_avg · n)² / Σ_u d(u)²``;
* [BGKMT16]: expected consensus time ``O(m / (d_min · φ))`` with ``m``
  edges, minimum degree ``d_min`` and conductance ``φ``.

This module computes the ingredients exactly for explicit graphs (dense
eigendecomposition — fine at experiment scale) and bounds the
conductance via Cheeger's inequality, so the coalescence experiments can
be compared against the cited scales on every graph family the library
ships.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..graphs.graph import CompleteGraph, CycleGraph, ExplicitGraph, SampleableGraph

__all__ = [
    "SpectralProfile",
    "transition_matrix",
    "spectral_profile",
    "ceor13_coalescence_scale",
    "bgkmt16_consensus_scale",
]


def transition_matrix(graph: SampleableGraph) -> np.ndarray:
    """The row-stochastic one-step matrix of the graph's pull walk.

    Exact for the library's graph classes: uniform over all nodes
    (complete graph with self-pulls), uniform over the other nodes
    (without self-pulls), the two cycle neighbors, or the explicit
    adjacency.
    """
    n = graph.num_nodes
    if isinstance(graph, CompleteGraph):
        if graph.include_self:
            return np.full((n, n), 1.0 / n)
        matrix = np.full((n, n), 1.0 / (n - 1))
        np.fill_diagonal(matrix, 0.0)
        return matrix
    if isinstance(graph, CycleGraph):
        matrix = np.zeros((n, n))
        for u in range(n):
            matrix[u, (u - 1) % n] = 0.5
            matrix[u, (u + 1) % n] = 0.5
        return matrix
    if isinstance(graph, ExplicitGraph):
        matrix = np.zeros((n, n))
        for u in range(n):
            neighbors = graph.neighbors(u)
            matrix[u, neighbors] = 1.0 / neighbors.size
        return matrix
    raise TypeError(f"no exact transition matrix for {type(graph).__name__}")


@dataclass(frozen=True)
class SpectralProfile:
    """Spectral/degree statistics of a graph's pull walk."""

    num_nodes: int
    spectral_gap: float  # μ = 1 − λ₂ (second-largest eigenvalue modulus ignored;
    # uses the second-largest *real* eigenvalue as in [CEOR13])
    lambda_2: float
    rho: float  # (d_avg n)² / Σ d(u)²
    average_degree: float
    min_degree: float
    cheeger_lower: float  # conductance ≥ μ / 2 (Cheeger)
    cheeger_upper: float  # conductance ≤ sqrt(2 μ)


def _degree_vector(graph: SampleableGraph) -> np.ndarray:
    n = graph.num_nodes
    if isinstance(graph, CompleteGraph):
        return np.full(n, float(n if graph.include_self else n - 1))
    if isinstance(graph, CycleGraph):
        return np.full(n, 2.0)
    if isinstance(graph, ExplicitGraph):
        return np.asarray([graph.degree(u) for u in range(n)], dtype=float)
    raise TypeError(f"no degree vector for {type(graph).__name__}")


def spectral_profile(graph: SampleableGraph) -> SpectralProfile:
    """Exact spectral gap, ``ρ``, and Cheeger conductance bounds."""
    matrix = transition_matrix(graph)
    eigenvalues = np.linalg.eigvals(matrix)
    real_parts = np.sort(eigenvalues.real)[::-1]
    lambda_2 = float(real_parts[1]) if real_parts.size > 1 else 0.0
    gap = 1.0 - lambda_2
    degrees = _degree_vector(graph)
    d_avg = float(degrees.mean())
    n = graph.num_nodes
    rho = (d_avg * n) ** 2 / float(np.sum(degrees**2))
    return SpectralProfile(
        num_nodes=n,
        spectral_gap=gap,
        lambda_2=lambda_2,
        rho=rho,
        average_degree=d_avg,
        min_degree=float(degrees.min()),
        cheeger_lower=gap / 2.0,
        cheeger_upper=math.sqrt(max(0.0, 2.0 * gap)),
    )


def ceor13_coalescence_scale(graph: SampleableGraph) -> float:
    """The [CEOR13] scale ``μ⁻¹ (log⁴ n + ρ)`` for the coalescence time."""
    profile = spectral_profile(graph)
    if profile.spectral_gap <= 0:
        return math.inf
    n = profile.num_nodes
    return (math.log(max(n, 2)) ** 4 + profile.rho) / profile.spectral_gap


def bgkmt16_consensus_scale(graph: SampleableGraph) -> float:
    """The [BGKMT16] scale ``m / (d_min · φ)``; φ taken at the Cheeger floor.

    Using the conservative lower Cheeger bound for the conductance makes
    this an upper-bound-shaped scale, matching how the citation is used
    in §1.1.
    """
    profile = spectral_profile(graph)
    degrees_sum = profile.average_degree * profile.num_nodes
    edges = degrees_sum / 2.0
    phi = profile.cheeger_lower
    if phi <= 0 or profile.min_degree <= 0:
        return math.inf
    return edges / (profile.min_degree * phi)
