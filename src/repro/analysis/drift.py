"""Drift theory — Theorem 7 ([LW14]) and its application to coalescence.

The paper bounds ``E[T^k_C]`` (Section 3.2 / Appendix A.6) by

1. establishing the one-step drift ``E[X_{t+1} − X_t | X_t = x] ≤ −x²/(10n)``
   for the number of coalescing walks on the complete graph, and
2. feeding ``h(x) = x²/(10n)`` into the variable drift theorem

       E[T | X₀] ≤ x_min / h(x_min) + ∫_{x_min}^{X₀} dy / h(y),

   which evaluates to ``E[T^k_C] ≤ 20n/k`` (Equation (18)).

This module implements the drift theorem bound (numerically, for any
drift function) plus the paper's specific closed forms, and provides an
empirical drift estimator so the tests can check the ``−x²/(10n)``
hypothesis itself against simulation.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np
from scipy import integrate

from ..coalescing.walks import CoalescingWalks
from ..graphs.graph import SampleableGraph

__all__ = [
    "variable_drift_bound",
    "coalescence_drift_function",
    "coalescence_time_bound",
    "estimate_coalescence_drift",
    "pairwise_meeting_probability",
]


def variable_drift_bound(
    x0: float,
    x_min: float,
    h: Callable,
    quad_limit: int = 200,
) -> float:
    """Theorem 7 (variable drift, [LW14, Cor. 1(i)]):

        E[T | X₀ = x0] ≤ x_min / h(x_min) + ∫_{x_min}^{x0} dy / h(y)

    for a process with drift ``E[X_{t+1} − X_t | X_t = x] ≤ −h(x)`` and a
    non-decreasing, positive ``h``.  Evaluated numerically with scipy.
    """
    if x0 < x_min:
        return 0.0
    if x_min <= 0:
        raise ValueError("x_min must be positive")
    head = x_min / h(x_min)
    if x0 == x_min:
        return head
    tail, _err = integrate.quad(lambda y: 1.0 / h(y), x_min, x0, limit=quad_limit)
    return head + tail


def coalescence_drift_function(n: int) -> Callable:
    """The paper's ``h(x) = x² / (10 n)`` for coalescing walks on ``K_n``."""
    if n < 1:
        raise ValueError("n must be positive")

    def h(x: float) -> float:
        return x * x / (10.0 * n)

    return h


def coalescence_time_bound(n: int, k: int) -> float:
    """Apply Theorem 7 with ``h(x) = x²/(10n)``, ``x_min = k``, ``X₀ = n``.

    Closed form: ``10n/k + 10n(1/k − 1/n) ≤ 20n/k`` — exactly the paper's
    Equation (18).  Computed numerically here so the test-suite can verify
    the closed form against the generic machinery.
    """
    return variable_drift_bound(float(n), float(k), coalescence_drift_function(n))


def estimate_coalescence_drift(
    graph: SampleableGraph,
    num_walks: int,
    trials: int,
    rng: np.random.Generator,
) -> "tuple[float, float]":
    """Empirical one-step drop ``E[X_t − X_{t+1} | X_t = num_walks]``.

    Places ``num_walks`` walks on uniformly random distinct nodes, performs
    one synchronous step, and averages the number of coalescences over
    ``trials``.  Returns ``(mean_drop, sem)``.  The paper's hypothesis is
    ``mean_drop ≥ x²/(10n)`` on the complete graph (it is in fact
    ``≈ x²/(2n)`` for ``x ≪ n``; the 10 is proof slack).
    """
    if not 2 <= num_walks <= graph.num_nodes:
        raise ValueError("need 2 <= num_walks <= n")
    walker = CoalescingWalks(graph)
    drops = np.empty(trials, dtype=float)
    for i in range(trials):
        start = rng.choice(graph.num_nodes, size=num_walks, replace=False)
        after = walker.step(np.asarray(start, dtype=np.int64), rng)
        drops[i] = num_walks - after.size
    sem = float(drops.std(ddof=1) / math.sqrt(trials)) if trials > 1 else float("nan")
    return float(drops.mean()), sem


def pairwise_meeting_probability(n: int) -> float:
    """Probability two independent uniform-pull walks on ``K_n`` (self
    included) land on the same node in one step: exactly ``1/n``."""
    if n < 1:
        raise ValueError("n must be positive")
    return 1.0 / n
