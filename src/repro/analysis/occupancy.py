"""Occupancy (birthday-problem) formulas behind the coalescence drift.

The drift hypothesis of Section 3.2 — ``E[X_{t+1} | X_t = x] ≤ x −
x²/(10n)`` for coalescing walks on the complete graph — is proof slack
around an exactly computable quantity: when ``x`` walks each jump to an
independent uniform node among ``n``, the expected number of occupied
nodes afterwards is the classic occupancy mean

    E[#occupied] = n · (1 − (1 − 1/n)^x),

so the exact expected one-step drop is ``x − n(1 − (1 − 1/n)^x)``.
These closed forms let the tests pin the simulator to exact values and
quantify the slack in the paper's ``x²/(10n)``.
"""

from __future__ import annotations

import math

__all__ = [
    "expected_occupied_nodes",
    "expected_coalescence_drop",
    "paper_drift_lower_bound",
    "drift_slack_factor",
]


def expected_occupied_nodes(n: int, x: int) -> float:
    """``E[#occupied] = n (1 − (1 − 1/n)^x)`` for x uniform throws into n bins."""
    if n < 1:
        raise ValueError("n must be positive")
    if not 0 <= x:
        raise ValueError("x must be non-negative")
    return n * (1.0 - (1.0 - 1.0 / n) ** x)


def expected_coalescence_drop(n: int, x: int) -> float:
    """Exact ``E[X_t − X_{t+1} | X_t = x]`` on the complete graph with self-pulls.

    All ``x`` walks jump simultaneously to independent uniform nodes; the
    number of surviving walks is the number of occupied bins.
    """
    if x < 1:
        raise ValueError("need at least one walk")
    return x - expected_occupied_nodes(n, x)


def paper_drift_lower_bound(n: int, x: int) -> float:
    """The paper's drift hypothesis ``x²/(10n)`` (Equation (7))."""
    if n < 1 or x < 0:
        raise ValueError("need n >= 1 and x >= 0")
    return x * x / (10.0 * n)


def drift_slack_factor(n: int, x: int) -> float:
    """Exact drop divided by the paper's bound — how loose the 10 is.

    For ``x ≪ n`` the exact drop is ``≈ x(x−1)/(2n)``, so the factor
    approaches 5 from below as ``x`` grows; the paper's hypothesis is
    therefore valid with room to spare (the tests assert factor ≥ 1 for
    all admissible ``x``).
    """
    bound = paper_drift_lower_bound(n, x)
    if bound == 0:
        raise ValueError("bound degenerate at x = 0")
    return expected_coalescence_drop(n, x) / bound
