"""Concentration inequalities used in the paper's proofs.

Theorem 5's proof (Appendix A.8) controls the majorizing birth process
with multiplicative Chernoff bounds ([MU05, Theorem 4.4]); Lemma 3's
high-probability statement uses the phase/Markov amplification trick.
These helpers make the proof-side quantities computable so tests can
check both the inequalities themselves (against exact binomial tails)
and the specific applications in the paper.
"""

from __future__ import annotations

import math

from scipy import stats

__all__ = [
    "chernoff_upper_multiplicative",
    "chernoff_upper_above_2mu",
    "binomial_tail_exact",
    "phase_amplification_failure",
    "theorem5_tail_bound",
]


def chernoff_upper_multiplicative(mu: float, delta: float) -> float:
    """Chernoff: ``P[X ≥ (1+δ)μ] ≤ exp(−δ²μ / (2+δ))`` for ``δ > 0``.

    A standard form valid for sums of independent [0,1] variables (cf.
    [MU05, Thm 4.4]; this variant is valid for all ``δ > 0``).
    """
    if mu < 0 or delta <= 0:
        raise ValueError("need mu >= 0 and delta > 0")
    if mu == 0:
        return 0.0
    return math.exp(-(delta**2) * mu / (2.0 + delta))


def chernoff_upper_above_2mu(mu: float, threshold: float) -> float:
    """The bound the paper applies: ``P[B ≥ max(2μ, s)] ≤ exp(−s/3)`` shape.

    For ``B ≥ max(2 E[B], s)`` the exponent form used in Equation (21) is
    ``exp(−s/3)`` — with ``s = (γ/2) log n`` this yields the ``n^{−3}``
    failure probability.  ``threshold`` is the absolute threshold; the
    function evaluates the paper's bound, taking the weaker of the two
    regimes exactly as the displayed inequality does.
    """
    if mu < 0 or threshold <= 0:
        raise ValueError("need mu >= 0 and threshold > 0")
    s = max(threshold, 2.0 * mu)
    if mu == 0:
        return 0.0
    # P[B >= s] with s >= 2mu: delta = s/mu - 1 >= 1, bound exp(-delta*mu/3).
    delta = s / mu - 1.0
    return math.exp(-delta * mu / 3.0)


def binomial_tail_exact(n: int, p: float, threshold: int) -> float:
    """Exact ``P[Bin(n, p) ≥ threshold]`` via scipy's survival function."""
    if not 0 <= p <= 1:
        raise ValueError("p must lie in [0, 1]")
    if threshold <= 0:
        return 1.0
    return float(stats.binom.sf(threshold - 1, n, p))


def phase_amplification_failure(success_probability: float, phases: int) -> float:
    """Failure probability after ``phases`` independent Ω(1)-success phases.

    Lemma 3's amplification: each phase of length ``2·E[T]`` succeeds with
    probability ≥ 1/2 (Markov), so ``O(log n)`` phases fail with
    probability ``≤ (1 − p)^{phases}``.
    """
    if not 0 < success_probability <= 1:
        raise ValueError("success probability must lie in (0, 1]")
    if phases < 0:
        raise ValueError("phases must be non-negative")
    return (1.0 - success_probability) ** phases


def theorem5_tail_bound(n: int, ell: int, gamma: float = 18.0) -> float:
    """The per-color failure bound of Equation (21): ``≤ n^{−3}``.

    Evaluates the paper's chain: with ``ℓ' = max(2ℓ, γ log n)``,
    ``t₀ = n/(γℓ')``, ``p = (ℓ'/n)²``, the birth process accrues
    ``B ~ Bin(t₀ n, p)`` and

        P[P(t₀) ≥ ℓ'] = P[B ≥ ℓ' − ℓ]
                      ≤ P[B ≥ max(2 E[B], (γ/2) log n)]
                      ≤ exp(−(γ/2) log n / 3) ≤ n^{−3}  for γ ≥ 18.
    """
    log_n = math.log(max(n, 2))
    ell_prime = max(2 * ell, int(math.ceil(gamma * log_n)))
    t0 = n / (gamma * ell_prime)
    p = (ell_prime / n) ** 2
    mean_b = t0 * n * p
    s = (gamma / 2.0) * log_n
    threshold = max(2.0 * mean_b, s)
    if threshold <= mean_b:
        return 1.0
    delta = threshold / mean_b - 1.0 if mean_b > 0 else float("inf")
    if math.isinf(delta):
        return 0.0
    return math.exp(-delta * mean_b / 3.0)
