"""Exact Markov-chain analysis of AC-processes on small systems.

An AC-process on ``n`` nodes is a Markov chain on the configuration
space; by anonymity it projects to a chain on *integer partitions* of
``n`` (sorted count vectors).  For small ``n`` this chain is tiny, so we
can compute exact transition matrices, absorption (consensus) times, and
color-reduction time distributions by linear algebra — ground truth
against which the simulators and the paper's inequalities are tested.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..core.ac_process import ACProcessFunction
from ..core.majorization import all_integer_partition_configs

__all__ = ["PartitionChain", "ExactChainResult"]


def _sorted_partition(vector: "tuple[int, ...]") -> "tuple[int, ...]":
    nz = tuple(sorted((v for v in vector if v > 0), reverse=True))
    return nz if nz else (0,)


@dataclass(frozen=True)
class ExactChainResult:
    """Exact absorption analysis of an AC-process chain."""

    states: tuple  # sorted partitions, index-aligned with the matrices
    transition: np.ndarray  # row-stochastic matrix on partitions
    expected_consensus_time: dict  # partition -> exact E[T¹]

    def expected_time_from(self, partition: "tuple[int, ...]") -> float:
        """Exact expected consensus time from a partition (sorted counts)."""
        return self.expected_consensus_time[_sorted_partition(partition)]


class PartitionChain:
    """Exact chain of an AC-process on the partition space of ``n``.

    The per-node adoption law ``α`` is symmetric in color labels for all
    of the paper's processes, so the partition projection is lossless for
    the quantities studied (numbers of colors, consensus time).
    """

    def __init__(self, process_function: ACProcessFunction, n: int):
        if n < 1:
            raise ValueError("n must be positive")
        if n > 14:
            raise ValueError(
                "exact partition chains are intended for n <= 14 "
                f"(state space explodes); got n={n}"
            )
        self.process_function = process_function
        self.n = int(n)
        self.states = tuple(all_integer_partition_configs(n))
        self._index = {state: i for i, state in enumerate(self.states)}

    # ------------------------------------------------------------------
    def transition_matrix(self) -> np.ndarray:
        """The exact row-stochastic transition matrix on partitions.

        Row ``c``: enumerate all multinomial outcomes of ``Mult(n, α(c))``
        over the supported colors of ``c`` and project each outcome to its
        partition.  (Colors with zero support have ``α_i = 0`` for all the
        paper's processes — no new colors are ever created — so restricting
        the multinomial to the support is exact.)
        """
        size = len(self.states)
        matrix = np.zeros((size, size))
        for row, state in enumerate(self.states):
            counts = np.asarray(state, dtype=np.int64)
            alpha = self.process_function.probabilities(counts)
            if np.any(alpha[counts == 0] > 1e-15):
                raise ValueError(
                    "process function revives unsupported colors; the "
                    "partition projection would be lossy"
                )
            for outcome, prob in _multinomial_outcomes(self.n, alpha):
                target = _sorted_partition(outcome)
                matrix[row, self._index[target]] += prob
        return matrix

    def analyze(self) -> ExactChainResult:
        """Exact expected consensus times via the fundamental-matrix solve.

        Consensus states (single-part partitions) are absorbing for all of
        the paper's processes; the expected absorption time from each
        transient state solves ``(I − Q) t = 1``.
        """
        matrix = self.transition_matrix()
        absorbing = [i for i, s in enumerate(self.states) if len(s) == 1]
        transient = [i for i, s in enumerate(self.states) if len(s) > 1]
        expected = {self.states[i]: 0.0 for i in absorbing}
        if transient:
            q = matrix[np.ix_(transient, transient)]
            times = np.linalg.solve(np.eye(len(transient)) - q, np.ones(len(transient)))
            for local, i in enumerate(transient):
                expected[self.states[i]] = float(times[local])
        return ExactChainResult(
            states=self.states,
            transition=matrix,
            expected_consensus_time=expected,
        )

    def reduction_time_distribution(
        self, start: "tuple[int, ...]", kappa: int, horizon: int
    ) -> np.ndarray:
        """Exact distribution of ``T^κ`` truncated at ``horizon``.

        Entry ``t`` of the result is ``P[T^κ = t]`` (with any remaining
        mass beyond the horizon *not* included; callers should pick the
        horizon so the tail is negligible).  Used to validate Theorem 2's
        stochastic dominance *exactly* on small systems.
        """
        matrix = self.transition_matrix()
        start_key = _sorted_partition(start)
        dist = np.zeros(len(self.states))
        dist[self._index[start_key]] = 1.0
        reached = np.asarray([len(s) <= kappa for s in self.states])
        pmf = np.zeros(horizon + 1)
        pmf[0] = dist[reached].sum()
        dist[reached] = 0.0
        for t in range(1, horizon + 1):
            dist = dist @ matrix
            pmf[t] = dist[reached].sum()
            dist[reached] = 0.0
        return pmf


def _multinomial_outcomes(n: int, alpha: np.ndarray):
    """Enumerate (outcome, probability) of ``Mult(n, alpha)`` over the support."""
    support = [i for i, p in enumerate(alpha) if p > 0]
    probs = [float(alpha[i]) for i in support]
    k = len(support)
    log_probs = [math.log(p) for p in probs]
    log_fact = [math.lgamma(m + 1) for m in range(n + 1)]

    def _rec(remaining: int, idx: int, partial: list):
        if idx == k - 1:
            yield partial + [remaining]
            return
        for take in range(remaining + 1):
            yield from _rec(remaining - take, idx + 1, partial + [take])

    full_width = alpha.size
    for comp in _rec(n, 0, []):
        log_p = log_fact[n]
        for count, lp in zip(comp, log_probs):
            log_p += count * lp - log_fact[count]
        outcome = [0] * full_width
        for slot, count in zip(support, comp):
            outcome[slot] = count
        yield tuple(outcome), math.exp(log_p)
