"""Every bound in the paper, as a documented formula.

Benchmarks compare measured quantities against these functions rather
than against magic numbers, so each theorem's prediction is written down
exactly once.  All formulas return the *scale* of the bound (the
asymptotic expression evaluated at the given arguments, constant 1 unless
the paper fixes one); callers supply their own empirical constants where
needed.
"""

from __future__ import annotations

import math

__all__ = [
    "three_majority_consensus_upper",
    "two_choices_symmetry_breaking_lower",
    "two_choices_threshold",
    "voter_reduction_upper",
    "coalescence_expected_upper",
    "bcn16_consensus_upper",
    "phase1_target_colors",
    "efk16_two_choices_biased_upper",
    "bcn14_three_majority_biased_upper",
    "min_bias_two_choices",
    "min_bias_three_majority",
]


def _log(n: float) -> float:
    return math.log(max(float(n), 2.0))


def three_majority_consensus_upper(n: int) -> float:
    """Theorem 4: 3-Majority consensus w.h.p. within ``O(n^{3/4} log^{7/8} n)``.

    Unconditional — valid from *any* initial configuration, including the
    n-color leader-election start.
    """
    return n**0.75 * _log(n) ** 0.875


def two_choices_threshold(ell: int, n: int, gamma: float = 18.0) -> int:
    """Theorem 5's support threshold ``ℓ' = max(2ℓ, γ log n)``."""
    return int(max(2 * ell, math.ceil(gamma * _log(n))))


def two_choices_symmetry_breaking_lower(n: int, ell: int, gamma: float = 18.0) -> float:
    """Theorem 5: w.h.p. no color exceeds ``ℓ'`` for ``n / (γ ℓ')`` rounds.

    For the n-color start (``ℓ = 1``) this is ``n / (γ² log n)`` up to the
    ceiling in ``ℓ'`` — the paper's ``Ω(n / log n)`` lower bound on the
    2-Choices consensus time.
    """
    ell_prime = two_choices_threshold(ell, n, gamma)
    return n / (gamma * ell_prime)


def voter_reduction_upper(n: int, k: int) -> float:
    """Lemma 3: Voter reaches ``≤ k`` colors w.h.p. in ``O((n/k) log n)``."""
    if k < 1:
        raise ValueError("k must be positive")
    return (n / k) * _log(n)


def coalescence_expected_upper(n: int, k: int) -> float:
    """Equation (18): ``E[T^k_C] ≤ 20 n / k`` (constant included).

    The one bound in the paper with an explicit constant; the E5 bench
    checks the measured mean against it directly.
    """
    if k < 1:
        raise ValueError("k must be positive")
    return 20.0 * n / k


def bcn16_consensus_upper(n: int, k: int) -> float:
    """Theorem 8 ([BCN+16, Thm 3.1]): 3-Majority from ``k ≤ n^{1/3−ε}`` colors
    reaches consensus w.h.p. in ``O((k² log^{1/2} n + k log n)(k + log n))``."""
    if k < 1:
        raise ValueError("k must be positive")
    log_n = _log(n)
    return (k**2 * log_n**0.5 + k * log_n) * (k + log_n)


def phase1_target_colors(n: int) -> int:
    """The phase boundary of Theorem 4's proof: ``≈ n^{1/4} log^{1/8} n`` colors."""
    return max(1, int(round(n**0.25 * _log(n) ** 0.125)))


def efk16_two_choices_biased_upper(n: int, k: int) -> float:
    """[EFK+16]: biased 2-Choices reaches consensus w.h.p. in ``O(k log n)``,
    for ``k = O(n^ε)`` and bias ``Ω(√(n log n))``."""
    return k * _log(n)


def bcn14_three_majority_biased_upper(n: int, k: int) -> float:
    """[BCN+14]: biased 3-Majority needs ``O(min{k, (n/log n)^{1/3}} log n)``."""
    return min(k, (n / _log(n)) ** (1.0 / 3.0)) * _log(n)


def min_bias_two_choices(n: int) -> float:
    """Bias scale ``√(n log n)`` required by the biased 2-Choices results."""
    return math.sqrt(n * _log(n))


def min_bias_three_majority(n: int, k: int) -> float:
    """Bias scale ``√k · √(n log n)`` from [BCN+14] (footnote 4)."""
    return math.sqrt(k) * math.sqrt(n * _log(n))
