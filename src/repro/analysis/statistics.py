"""Statistical estimators for the experiment harness.

Asymptotic statements (``O(n^{3/4})``, ``Ω(n / log n)``) are validated by
fitting growth exponents on geometric sweeps of ``n`` and comparing the
fitted exponent against the theorem's.  This module provides the log-log
regression, confidence intervals, and the one-sided dominance tests used
by the benchmark harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "fit_power_law_with_log_correction",
    "mean_confidence_interval",
    "mann_whitney_less",
]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y ≈ a · x^b`` on log-log scale."""

    exponent: float
    prefactor: float
    exponent_stderr: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.prefactor * x**self.exponent

    def exponent_ci95(self) -> "tuple[float, float]":
        half = 1.96 * self.exponent_stderr
        return (self.exponent - half, self.exponent + half)

    def summary(self) -> str:
        lo, hi = self.exponent_ci95()
        return (
            f"y ≈ {self.prefactor:.3g} · x^{self.exponent:.3f} "
            f"(95% CI [{lo:.3f}, {hi:.3f}], R²={self.r_squared:.4f})"
        )


def fit_power_law(x: np.ndarray, y: np.ndarray) -> PowerLawFit:
    """Fit ``y = a x^b`` by ordinary least squares in log-log coordinates."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size or x.size < 3:
        raise ValueError("need at least three aligned (x, y) points")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fitting requires positive data")
    log_x = np.log(x)
    log_y = np.log(y)
    result = stats.linregress(log_x, log_y)
    return PowerLawFit(
        exponent=float(result.slope),
        prefactor=float(math.exp(result.intercept)),
        exponent_stderr=float(result.stderr),
        r_squared=float(result.rvalue**2),
    )


def fit_power_law_with_log_correction(
    x: np.ndarray, y: np.ndarray, log_exponent: float
) -> PowerLawFit:
    """Fit ``y = a · x^b · (log x)^{log_exponent}`` by dividing out the log.

    The paper's bounds carry polylog factors (``log^{7/8} n`` in Theorem 4,
    ``1/log n`` in Theorem 5); dividing them out before the log-log fit
    gives a cleaner estimate of the polynomial exponent ``b``.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    corrected = y / np.log(x) ** log_exponent
    return fit_power_law(x, corrected)


def mean_confidence_interval(samples: np.ndarray, confidence: float = 0.95) -> "tuple[float, float, float]":
    """``(mean, lo, hi)`` with a Student-t interval."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two samples for an interval")
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    half = float(stats.t.ppf((1 + confidence) / 2, arr.size - 1)) * sem
    return mean, mean - half, mean + half


def mann_whitney_less(fast: np.ndarray, slow: np.ndarray) -> float:
    """One-sided Mann-Whitney U p-value for ``fast <_st slow``.

    Small p-values support the hypothesis that the ``fast`` sample is
    stochastically smaller — the empirical form of Theorem 2's conclusion.
    """
    result = stats.mannwhitneyu(fast, slow, alternative="less")
    return float(result.pvalue)
