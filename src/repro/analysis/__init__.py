"""Theory-side toolbox: bounds, drift theory, exact chains, statistics."""

from .bounds import (
    bcn14_three_majority_biased_upper,
    bcn16_consensus_upper,
    coalescence_expected_upper,
    efk16_two_choices_biased_upper,
    min_bias_three_majority,
    min_bias_two_choices,
    phase1_target_colors,
    three_majority_consensus_upper,
    two_choices_symmetry_breaking_lower,
    two_choices_threshold,
    voter_reduction_upper,
)
from .concentration import (
    binomial_tail_exact,
    chernoff_upper_above_2mu,
    chernoff_upper_multiplicative,
    phase_amplification_failure,
    theorem5_tail_bound,
)
from .drift import (
    coalescence_drift_function,
    coalescence_time_bound,
    estimate_coalescence_drift,
    pairwise_meeting_probability,
    variable_drift_bound,
)
from .exact_chain import ExactChainResult, PartitionChain
from .occupancy import (
    drift_slack_factor,
    expected_coalescence_drop,
    expected_occupied_nodes,
    paper_drift_lower_bound,
)
from .phases import PhaseBreakdown, measure_phases
from .spectral import (
    SpectralProfile,
    bgkmt16_consensus_scale,
    ceor13_coalescence_scale,
    spectral_profile,
    transition_matrix,
)
from .expectation import (
    empirical_mean_next_counts,
    exact_expected_counts_ac,
    exact_expected_counts_two_choices,
    footnote2_identity_gap,
)
from .statistics import (
    PowerLawFit,
    fit_power_law,
    fit_power_law_with_log_correction,
    mann_whitney_less,
    mean_confidence_interval,
)

__all__ = [
    "ExactChainResult",
    "PartitionChain",
    "PhaseBreakdown",
    "PowerLawFit",
    "SpectralProfile",
    "bcn14_three_majority_biased_upper",
    "bcn16_consensus_upper",
    "bgkmt16_consensus_scale",
    "ceor13_coalescence_scale",
    "binomial_tail_exact",
    "chernoff_upper_above_2mu",
    "chernoff_upper_multiplicative",
    "coalescence_drift_function",
    "drift_slack_factor",
    "coalescence_expected_upper",
    "coalescence_time_bound",
    "efk16_two_choices_biased_upper",
    "empirical_mean_next_counts",
    "estimate_coalescence_drift",
    "expected_coalescence_drop",
    "expected_occupied_nodes",
    "exact_expected_counts_ac",
    "exact_expected_counts_two_choices",
    "fit_power_law",
    "fit_power_law_with_log_correction",
    "footnote2_identity_gap",
    "mann_whitney_less",
    "measure_phases",
    "mean_confidence_interval",
    "min_bias_three_majority",
    "min_bias_two_choices",
    "pairwise_meeting_probability",
    "paper_drift_lower_bound",
    "phase1_target_colors",
    "spectral_profile",
    "phase_amplification_failure",
    "theorem5_tail_bound",
    "three_majority_consensus_upper",
    "transition_matrix",
    "two_choices_symmetry_breaking_lower",
    "two_choices_threshold",
    "variable_drift_bound",
    "voter_reduction_upper",
]
