"""Phase decomposition of 3-Majority runs — the structure of Theorem 4's proof.

The proof of Theorem 4 splits the analysis at ``≈ n^{1/4} log^{1/8} n``
remaining colors:

* **Phase 1** (many colors): 3-Majority behaves essentially like Voter
  (a node rarely sees a repeated color among its samples), and its
  progress is bounded through the Voter domination (Lemma 2 + Lemma 3),
  giving ``Õ(n^{3/4})`` rounds to reach the phase boundary;
* **Phase 2** (few colors): the drift machinery of [BCN+16, Thm 3.1]
  applies and finishes within ``Õ(n^{3/4})`` more rounds.

This module measures the decomposition on actual runs: the rounds spent
in each phase, and the *Voter-likeness* of phase 1 — the per-round
probability that a node's first two samples collide (``‖x‖₂²``), which
is exactly the probability 3-Majority's update differs from a Voter
update under the resample formulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.configuration import Configuration
from ..engine.rng import RandomSource, as_generator
from ..processes.three_majority import ThreeMajority
from .bounds import phase1_target_colors

__all__ = ["PhaseBreakdown", "measure_phases"]


@dataclass(frozen=True)
class PhaseBreakdown:
    """Rounds and dynamics statistics of the two proof phases."""

    n: int
    boundary_colors: int
    phase1_rounds: int
    phase2_rounds: int
    phase1_mean_collision_probability: float
    phase1_max_collision_probability: float

    @property
    def total_rounds(self) -> int:
        return self.phase1_rounds + self.phase2_rounds

    @property
    def phase1_fraction(self) -> float:
        total = self.total_rounds
        return self.phase1_rounds / total if total else 0.0


def measure_phases(
    n: int,
    rng: RandomSource = None,
    boundary: "int | None" = None,
    max_rounds: "int | None" = None,
) -> PhaseBreakdown:
    """Run 3-Majority from the n-color start and split it at the boundary.

    ``boundary`` defaults to the proof's ``n^{1/4} log^{1/8} n``.  The
    collision probability ``‖x‖₂²`` is recorded each phase-1 round; the
    proof's phase-1 coupling is sharp exactly when it stays ≪ 1 (each
    node then almost always executes a plain Voter step).
    """
    generator = as_generator(rng)
    target = boundary if boundary is not None else phase1_target_colors(n)
    limit = max_rounds if max_rounds is not None else 500 * n + 10_000
    process = ThreeMajority()
    colors = Configuration.singletons(n).to_assignment()
    collisions = []
    rounds = 0
    remaining = n

    def _collision_probability(col: np.ndarray) -> float:
        counts = np.bincount(col)
        x = counts / col.size
        return float(np.dot(x, x))

    while remaining > target:
        collisions.append(_collision_probability(colors))
        colors = process.update(colors, generator)
        rounds += 1
        remaining = int(np.unique(colors).size)
        if rounds > limit:
            raise RuntimeError("phase 1 did not finish within the round limit")
    phase1_rounds = rounds
    while remaining > 1:
        colors = process.update(colors, generator)
        rounds += 1
        remaining = int(np.unique(colors).size)
        if rounds > limit:
            raise RuntimeError("phase 2 did not finish within the round limit")
    return PhaseBreakdown(
        n=n,
        boundary_colors=target,
        phase1_rounds=phase1_rounds,
        phase2_rounds=rounds - phase1_rounds,
        phase1_mean_collision_probability=float(np.mean(collisions)) if collisions else 0.0,
        phase1_max_collision_probability=float(np.max(collisions)) if collisions else 0.0,
    )
