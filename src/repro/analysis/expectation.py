"""Exact one-step expectations — footnote 2 and Definition 2's left side.

For an AC-process, ``E[P(c)] = n · α(c)`` exactly (the one-step law is
multinomial).  2-Choices is not an AC-process, but its expectation is
still closed-form (footnote 2):

    E[c_i'] / n = x_i² + (1 − ‖x‖₂²) · x_i,   x = c/n,

which *coincides with 3-Majority's process function* — the identity that
makes the paper's separation result startling.  This module computes both
sides exactly and provides the empirical-mean estimator used to validate
the agent-level implementations against the formulas (experiment E7).
"""

from __future__ import annotations

import numpy as np

from ..core.ac_process import ACProcessFunction
from ..core.configuration import Configuration
from ..engine.rng import RandomSource, as_generator
from ..processes.base import AgentProcess, counts_from_colors

__all__ = [
    "exact_expected_counts_ac",
    "exact_expected_counts_two_choices",
    "footnote2_identity_gap",
    "empirical_mean_next_counts",
]


def exact_expected_counts_ac(
    process_function: ACProcessFunction, config: Configuration
) -> np.ndarray:
    """``E[P(c)] = n · α(c)`` for an AC-process."""
    return config.num_nodes * process_function.probabilities_for(config)


def exact_expected_counts_two_choices(config: Configuration) -> np.ndarray:
    """Footnote 2 for 2-Choices: ``E[c_i'] = n(x_i² + (1 − ‖x‖₂²) x_i)``.

    Derivation: node ``u`` ends on color ``i`` iff both its samples show
    ``i`` (probability ``x_i²``, for *every* node), or its samples disagree
    (probability ``1 − ‖x‖₂²``) and ``u`` already has color ``i`` (``c_i``
    nodes).  Summing over nodes:

        E[c_i'] = n · x_i² + (1 − ‖x‖₂²) · c_i,

    which equals ``n · α^{3M}_i(c)`` — footnote 2's identity.
    """
    x = config.fractions()
    n = config.num_nodes
    norm_sq = float(np.dot(x, x))
    return n * (x**2) + (1.0 - norm_sq) * config.counts_array()


def footnote2_identity_gap(config: Configuration) -> float:
    """Max absolute gap between E[2-Choices(c)] and E[3-Majority(c)].

    Analytically zero for every configuration; the test-suite asserts it
    below floating-point tolerance over random and adversarial configs.
    """
    from ..core.ac_process import ThreeMajorityFunction

    lhs = exact_expected_counts_two_choices(config)
    rhs = exact_expected_counts_ac(ThreeMajorityFunction(), config)
    return float(np.abs(lhs - rhs).max())


def empirical_mean_next_counts(
    process: AgentProcess,
    config: Configuration,
    repetitions: int,
    rng: RandomSource = None,
) -> np.ndarray:
    """Monte-Carlo mean of the post-round count vector (agent semantics).

    Every repetition restarts from ``config`` and performs exactly one
    synchronous round; the mean converges to the closed forms above at
    rate ``O(1/√repetitions)``.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    generator = as_generator(rng)
    base_colors = process.initial_colors(config)
    acc = np.zeros(config.num_slots, dtype=float)
    for _ in range(repetitions):
        after = process.update(base_colors, generator)
        acc += counts_from_colors(after[after >= 0], config.num_slots)
    return acc / repetitions
