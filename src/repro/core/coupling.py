"""Couplings and stochastic majorization — Lemma 1, Theorem 2, Theorem 3.

The paper's technical core proves, via a variant of Strassen's theorem,
that two AC-processes with ``α(c) ⪰ α̃(c̃)`` admit a *coupling* of their
one-step multinomial distributions under which the resulting
configurations are majorization-comparable with probability one
(Lemma 1).  Iterating yields the stochastic dominance of color-reduction
times (Theorem 2).

The paper only proves *existence* of the coupling.  This module makes it
constructive where feasible:

* :func:`one_step_distribution` — the exact ``Mult(n, α(c))`` law as an
  explicit finite distribution over configurations;
* :func:`strassen_coupling` — solve the transportation feasibility LP for
  a joint law supported on ``{(x, y) : y ⪰ x}``; by Theorem 3 such a
  coupling exists iff ``X ⪯_st Y``, so a feasible solution *is* the
  coupling whose existence Lemma 1 asserts, and infeasibility certifies
  that stochastic majorization fails;
* :func:`stochastic_majorization_certificate` — check Definition 3's
  functional characterisation on the exact distributions using the
  (characterising) family of top-j prefix-sum test functions;
* :func:`estimate_reduction_time_dominance` — Monte-Carlo validation of
  Theorem 2's conclusion ``T^κ_{P'} ≥_st T^κ_P`` via empirical CDFs.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import optimize

from .ac_process import ACProcessFunction
from .configuration import Configuration
from .majorization import majorizes, top_j_sums

__all__ = [
    "FiniteDistribution",
    "one_step_distribution",
    "run_coupled_chains",
    "strassen_coupling",
    "CoupledTrajectory",
    "CouplingResult",
    "stochastic_majorization_certificate",
    "estimate_reduction_time_dominance",
    "ReductionTimeComparison",
]


@dataclass(frozen=True)
class FiniteDistribution:
    """An explicit finite distribution over count vectors."""

    support: tuple  # tuple of count-vector tuples
    probabilities: tuple  # matching probabilities

    def __post_init__(self):
        if len(self.support) != len(self.probabilities):
            raise ValueError("support and probabilities must align")
        total = float(sum(self.probabilities))
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities sum to {total}, not 1")

    def expectation(self) -> np.ndarray:
        """Component-wise expected count vector."""
        acc = np.zeros(len(self.support[0]), dtype=float)
        for outcome, prob in zip(self.support, self.probabilities):
            acc += prob * np.asarray(outcome, dtype=float)
        return acc

    def expect(self, phi: Callable) -> float:
        """``E[phi(X)]`` for a test function on count vectors."""
        return float(
            sum(p * phi(np.asarray(x, dtype=float)) for x, p in zip(self.support, self.probabilities))
        )

    def __len__(self) -> int:
        return len(self.support)


def _compositions_of(n: int, parts: int):
    if parts == 1:
        yield (n,)
        return
    for first in range(n + 1):
        for rest in _compositions_of(n - first, parts - 1):
            yield (first,) + rest


def _log_multinomial_pmf(outcome: tuple, alpha: np.ndarray) -> float:
    n = sum(outcome)
    log_p = math.lgamma(n + 1)
    for count, prob in zip(outcome, alpha):
        if count == 0:
            continue
        if prob <= 0:
            return -math.inf
        log_p += count * math.log(prob) - math.lgamma(count + 1)
    return log_p


def one_step_distribution(
    process: ACProcessFunction, config: Configuration, prune: float = 0.0
) -> FiniteDistribution:
    """The exact law of one AC-process round: ``Mult(n, α(c))`` enumerated.

    Enumerates all ``C(n + k − 1, k − 1)`` compositions, so keep ``n`` and
    the slot count small (this is a verification tool, not a simulator).
    ``prune`` drops outcomes of probability below the threshold and
    renormalises — acceptable for approximate LP checks, but leave it at 0
    for exact certificates.
    """
    counts = config.counts_array()
    n = int(counts.sum())
    k = counts.size
    alpha = process.probabilities(counts)
    support = []
    probs = []
    for outcome in _compositions_of(n, k):
        log_p = _log_multinomial_pmf(outcome, alpha)
        if log_p == -math.inf:
            continue
        p = math.exp(log_p)
        if p <= prune:
            continue
        support.append(outcome)
        probs.append(p)
    total = sum(probs)
    probs = [p / total for p in probs]
    return FiniteDistribution(support=tuple(support), probabilities=tuple(probs))


@dataclass
class CouplingResult:
    """Outcome of a Strassen transportation LP."""

    feasible: bool
    joint: "np.ndarray | None"
    lower_support: tuple
    upper_support: tuple
    admissible_pairs: int

    def verify(self, tol: float = 1e-7) -> bool:
        """Re-check marginals and support constraints of the joint law."""
        if not self.feasible or self.joint is None:
            return False
        joint = self.joint
        if np.any(joint < -tol):
            return False
        for i, x in enumerate(self.lower_support):
            for j, y in enumerate(self.upper_support):
                if joint[i, j] > tol and not majorizes(y, x):
                    return False
        return True


def _prefix_matrix(support: tuple) -> np.ndarray:
    """Row ``i``: non-increasing prefix sums of the ``i``-th count vector."""
    arr = np.asarray(support, dtype=float)
    ordered = -np.sort(-arr, axis=1)
    return np.cumsum(ordered, axis=1)


def _pad_prefix(prefix: np.ndarray, width: int) -> np.ndarray:
    """Edge-pad prefix rows to a common width (zeros add nothing)."""
    if prefix.shape[1] == width:
        return prefix
    pad = np.repeat(prefix[:, -1:], width - prefix.shape[1], axis=1)
    return np.concatenate([prefix, pad], axis=1)


def strassen_coupling(
    lower: FiniteDistribution,
    upper: FiniteDistribution,
    tol: float = 1e-9,
) -> CouplingResult:
    """Construct a coupling of ``lower`` and ``upper`` with ``Y ⪰ X`` a.s.

    Solves the transportation feasibility problem

        π ≥ 0,  π supported on {(x, y) : y ⪰ x},
        Σ_y π(x, y) = lower(x),  Σ_x π(x, y) = upper(y)

    with scipy's HiGHS LP solver.  By the Strassen variant (Theorem 3 of
    the paper) feasibility is *equivalent* to ``X ⪯_st Y`` in the
    stochastic majorization order, so this function doubles as an exact
    decision procedure for Definition 3 on finite distributions.
    """
    nx = len(lower)
    ny = len(upper)
    # Vectorised admissibility: y ⪰ x iff every top-j prefix sum of y
    # dominates x's (totals are equal by construction: both laws place
    # n nodes).  Prefix matrices make this a single broadcast comparison
    # instead of nx·ny Python-level majorization checks.
    lower_prefix = _prefix_matrix(lower.support)
    upper_prefix = _prefix_matrix(upper.support)
    width = max(lower_prefix.shape[1], upper_prefix.shape[1])
    lower_prefix = _pad_prefix(lower_prefix, width)
    upper_prefix = _pad_prefix(upper_prefix, width)
    dominates = np.all(
        upper_prefix[None, :, :] >= lower_prefix[:, None, :] - tol, axis=2
    )
    admissible = [(int(i), int(j)) for i, j in zip(*np.nonzero(dominates))]
    if not admissible:
        return CouplingResult(
            feasible=False,
            joint=None,
            lower_support=lower.support,
            upper_support=upper.support,
            admissible_pairs=0,
        )
    num_vars = len(admissible)
    # Equality constraints: one row per lower outcome, one per upper outcome.
    rows = []
    cols = []
    data = []
    for var, (i, j) in enumerate(admissible):
        rows.append(i)
        cols.append(var)
        data.append(1.0)
        rows.append(nx + j)
        cols.append(var)
        data.append(1.0)
    from scipy.sparse import coo_matrix

    a_eq = coo_matrix((data, (rows, cols)), shape=(nx + ny, num_vars))
    b_eq = np.concatenate(
        [np.asarray(lower.probabilities), np.asarray(upper.probabilities)]
    )
    result = optimize.linprog(
        c=np.zeros(num_vars),
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not result.success:
        return CouplingResult(
            feasible=False,
            joint=None,
            lower_support=lower.support,
            upper_support=upper.support,
            admissible_pairs=num_vars,
        )
    joint = np.zeros((nx, ny))
    for var, (i, j) in enumerate(admissible):
        joint[i, j] = result.x[var]
    return CouplingResult(
        feasible=True,
        joint=joint,
        lower_support=lower.support,
        upper_support=upper.support,
        admissible_pairs=num_vars,
    )


def stochastic_majorization_certificate(
    lower: FiniteDistribution, upper: FiniteDistribution, tol: float = 1e-9
) -> tuple:
    """Check ``X ⪯_st Y`` via expectations of the characterising test family.

    Uses the top-j prefix-sum functions, which are Schur-convex and —
    together with the (fixed) total — generate the majorization preorder.
    Returns ``(holds, margins)`` where ``margins[j] = E[top_j(Y)] −
    E[top_j(X)]``; all margins non-negative is *necessary* for stochastic
    majorization (and empirically a sharp screen before running the LP).
    """
    width = max(len(lower.support[0]), len(upper.support[0]))
    margins = []
    for j in range(width):
        def phi(vec: np.ndarray, j=j) -> float:
            return float(np.sort(vec)[::-1][: j + 1].sum())

        margins.append(upper.expect(phi) - lower.expect(phi))
    margins_arr = np.asarray(margins)
    return bool(np.all(margins_arr >= -tol)), margins_arr


@dataclass
class ReductionTimeComparison:
    """Empirical comparison of color-reduction times of two processes."""

    kappa: int
    times_fast: np.ndarray
    times_slow: np.ndarray

    def empirical_cdf_dominates(self, slack: float = 0.0) -> bool:
        """True iff the 'fast' CDF lies (weakly) above the 'slow' CDF.

        Theorem 2 predicts ``T^κ_slow ≥_st T^κ_fast``, i.e.
        ``P[T_fast ≤ t] ≥ P[T_slow ≤ t]`` for all ``t``.  ``slack`` allows
        a small Monte-Carlo tolerance on the CDF gap.
        """
        horizon = int(max(self.times_fast.max(), self.times_slow.max()))
        for t in range(horizon + 1):
            cdf_fast = float(np.mean(self.times_fast <= t))
            cdf_slow = float(np.mean(self.times_slow <= t))
            if cdf_fast < cdf_slow - slack:
                return False
        return True

    def mean_gap(self) -> float:
        """Mean of slow minus mean of fast (positive supports Theorem 2)."""
        return float(self.times_slow.mean() - self.times_fast.mean())


def estimate_reduction_time_dominance(
    fast: ACProcessFunction,
    slow: ACProcessFunction,
    initial: Configuration,
    kappa: int,
    repetitions: int,
    rng: np.random.Generator,
    max_rounds: int | None = None,
) -> ReductionTimeComparison:
    """Monte-Carlo sample ``T^κ`` for both processes from a shared start.

    Runs exact count-level chains.  ``max_rounds`` guards against runaway
    chains (a run that fails to reduce in time raises, rather than silently
    truncating the sample).
    """
    if kappa < 1:
        raise ValueError("kappa must be at least 1")
    limit = max_rounds if max_rounds is not None else 500 * initial.num_nodes

    def _one_run(process: ACProcessFunction, run_rng: np.random.Generator) -> int:
        counts = initial.counts_array().copy()
        t = 0
        while int(np.count_nonzero(counts)) > kappa:
            counts = process.step_counts(counts, run_rng)
            t += 1
            if t > limit:
                raise RuntimeError(
                    f"{process.name} failed to reach {kappa} colors within {limit} rounds"
                )
        return t

    seeds = rng.spawn(2 * repetitions)
    times_fast = np.array(
        [_one_run(fast, seeds[r]) for r in range(repetitions)], dtype=np.int64
    )
    times_slow = np.array(
        [_one_run(slow, seeds[repetitions + r]) for r in range(repetitions)],
        dtype=np.int64,
    )
    return ReductionTimeComparison(
        kappa=kappa, times_fast=times_fast, times_slow=times_slow
    )


@dataclass
class CoupledTrajectory:
    """A realisation of the Theorem-2 coupling between two AC-chains.

    ``upper_states[t] ⪰ lower_states[t]`` holds *surely* at every round by
    construction, which (since ``c ⪰ c̃`` forces ``c`` to have at most as
    many colors as ``c̃``) realises Lemma 2's statement that the faster
    process never has more remaining colors.
    """

    upper_states: list  # count tuples of the dominating (fast) process
    lower_states: list  # count tuples of the dominated (slow) process

    def majorization_maintained(self, tol: float = 1e-9) -> bool:
        """Check ``upper[t] ⪰ lower[t]`` for every recorded round."""
        return all(
            majorizes(np.asarray(u, dtype=float), np.asarray(l, dtype=float), tol=tol)
            for u, l in zip(self.upper_states, self.lower_states)
        )

    def colors_never_more(self) -> bool:
        """The Lemma-2 conclusion: fast chain never has more colors."""
        return all(
            int(np.count_nonzero(u)) <= int(np.count_nonzero(l))
            for u, l in zip(self.upper_states, self.lower_states)
        )

    def rounds(self) -> int:
        return len(self.upper_states) - 1


def run_coupled_chains(
    fast: ACProcessFunction,
    slow: ACProcessFunction,
    initial: Configuration,
    rounds: int,
    rng: np.random.Generator,
    tol: float = 1e-9,
) -> CoupledTrajectory:
    """Execute the Theorem-2 coupling for ``rounds`` steps, explicitly.

    At every round the exact one-step laws of both chains are enumerated,
    the Strassen transportation LP of Lemma 1 is solved for a joint law
    supported on majorization-ordered pairs, and the next *pair* of
    states is drawn from that joint law.  The resulting trajectory
    satisfies ``fast_state ⪰ slow_state`` with probability one — the
    paper proves such a coupling exists; this function samples from it.

    Requires ``fast`` to dominate ``slow`` along the trajectory (true for
    3-Majority over Voter by Lemma 2); raises if the LP ever becomes
    infeasible, which would disprove the dominance.  Exponential in the
    configuration size — a verification tool for small ``n``.
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")

    def _canonical(counts: np.ndarray) -> np.ndarray:
        # Sorted-descending with trailing zeros dropped: AC dynamics and
        # majorization are invariant under color relabelling, and smaller
        # slot counts shrink the enumerated laws dramatically as colors
        # die out.
        ordered = np.sort(counts)[::-1]
        nonzero = int(np.count_nonzero(ordered))
        return ordered[: max(nonzero, 1)].copy()

    upper_counts = _canonical(initial.counts_array())
    lower_counts = _canonical(initial.counts_array())
    upper_states = [tuple(int(v) for v in upper_counts)]
    lower_states = [tuple(int(v) for v in lower_counts)]
    for _ in range(rounds):
        upper_dist = one_step_distribution(fast, Configuration(upper_counts))
        lower_dist = one_step_distribution(slow, Configuration(lower_counts))
        coupling = strassen_coupling(lower=lower_dist, upper=upper_dist, tol=tol)
        if not coupling.feasible or coupling.joint is None:
            raise RuntimeError(
                "Strassen LP infeasible mid-trajectory: the claimed dominance "
                f"fails at states {upper_states[-1]} / {lower_states[-1]}"
            )
        joint = np.clip(coupling.joint, 0.0, None)
        flat = joint.ravel()
        flat = flat / flat.sum()
        cell = int(rng.choice(flat.size, p=flat))
        row, col = divmod(cell, joint.shape[1])
        lower_counts = _canonical(np.asarray(lower_dist.support[row], dtype=np.int64))
        upper_counts = _canonical(np.asarray(upper_dist.support[col], dtype=np.int64))
        upper_states.append(tuple(int(v) for v in upper_counts))
        lower_states.append(tuple(int(v) for v in lower_counts))
    return CoupledTrajectory(upper_states=upper_states, lower_states=lower_states)
