"""Anonymous consensus (AC-) processes — Definition 1 of the paper.

An AC-process on ``n`` nodes is characterised by a *process function*
``α : C → [0, 1]^n`` with ``Σ_i α_i(c) = 1``: in configuration ``c`` every
node independently adopts color ``i`` with probability ``α_i(c)``.  Node
identities (including the updating node's own color) play no role, which
is what makes these processes *anonymous* — and what makes their one-step
distribution exactly multinomial: ``P(c) ~ Mult(n, α(c))``.

Voter and 3-Majority are AC-processes (Equations (1) and (2) of the
paper); 2-Choices is *not*, because a node that sees two disagreeing
samples keeps its own color, so its next color depends on its current one.
The class matters because the paper's entire coupling framework
(Lemma 1 / Theorem 2) applies exactly to this class — and provably fails
outside it (2-Choices dominates Voter in expectation yet is much slower).
"""

from __future__ import annotations

import abc
import math
from typing import Iterable

import numpy as np

from .configuration import Configuration

__all__ = [
    "ACProcessFunction",
    "VoterFunction",
    "ThreeMajorityFunction",
    "HMajorityFunction",
    "PowerDriftFunction",
    "multinomial_step",
    "multinomial_step_batch",
    "expected_next_counts",
]


class ACProcessFunction(abc.ABC):
    """A process function ``α`` defining an AC-process.

    Subclasses implement :meth:`probabilities`, mapping a count vector to
    the common adoption distribution over color slots.  The base class
    provides the exact one-step sampler (a multinomial draw) and the exact
    one-step expectation operator ``E[P(c)] = n · α(c)``.
    """

    #: Human-readable protocol name used in reports.
    name: str = "ac-process"

    @abc.abstractmethod
    def probabilities(self, counts: np.ndarray) -> np.ndarray:
        """Return ``α(c)`` for the configuration with count vector ``counts``.

        ``counts`` is a one-dimensional non-negative integer array summing
        to ``n``.  The result must be a probability vector of the same
        length.
        """

    # ------------------------------------------------------------------
    def probabilities_for(self, config: Configuration) -> np.ndarray:
        """Convenience wrapper taking a :class:`Configuration`."""
        return self.probabilities(config.counts_array())

    def step_counts(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One exact synchronous round: a single ``Mult(n, α(c))`` draw."""
        alpha = self.probabilities(counts)
        n = int(counts.sum())
        return multinomial_step(n, alpha, rng)

    def step(self, config: Configuration, rng: np.random.Generator) -> Configuration:
        """One exact synchronous round on a :class:`Configuration`."""
        return Configuration(self.step_counts(config.counts_array(), rng))

    def probabilities_batch(self, counts: np.ndarray) -> np.ndarray:
        """``α`` applied row-wise to an ``(R, k)`` counts matrix.

        The base implementation loops :meth:`probabilities` over the rows,
        so every process function works in the ensemble engine day one;
        closed-form functions override with a fully vectorized version.
        """
        counts = np.asarray(counts)
        return np.stack(
            [self.probabilities(counts[r]) for r in range(counts.shape[0])]
        )

    def step_counts_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One exact round for a whole ensemble of count vectors.

        ``counts`` is an ``(R, k)`` matrix of independent replicas; the
        result is one ``Mult(n_r, α(c_r))`` draw per row, all taken from the
        single shared ``rng`` stream (replicas stay independent because each
        row's draw uses fresh variates).
        """
        counts = np.asarray(counts, dtype=np.int64)
        alpha = self.probabilities_batch(counts)
        return multinomial_step_batch(counts.sum(axis=1), alpha, rng)

    def expected_next(self, config: Configuration) -> np.ndarray:
        """The exact expectation ``E[P(c)] = n · α(c)`` (a real vector)."""
        return expected_next_counts(config.counts_array(), self)

    def validate(self, counts: np.ndarray, tol: float = 1e-9) -> None:
        """Raise if ``α(counts)`` is not a probability vector."""
        alpha = self.probabilities(np.asarray(counts, dtype=np.int64))
        if alpha.shape != np.asarray(counts).shape:
            raise ValueError("process function changed the slot dimension")
        if np.any(alpha < -tol):
            raise ValueError("process function produced negative probabilities")
        if abs(float(alpha.sum()) - 1.0) > tol:
            raise ValueError(
                f"process function probabilities sum to {float(alpha.sum())}, not 1"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def multinomial_step(n: int, alpha: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Draw the next count vector ``Mult(n, alpha)``; tolerant of float dust."""
    alpha = np.asarray(alpha, dtype=float)
    alpha = np.clip(alpha, 0.0, None)
    total = alpha.sum()
    if total <= 0:
        raise ValueError("adoption probabilities sum to zero")
    return rng.multinomial(n, alpha / total).astype(np.int64)


def multinomial_step_batch(
    n: "int | np.ndarray", alpha: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Row-wise ``Mult(n_r, alpha_r)`` draws in one broadcast call.

    ``alpha`` is ``(R, k)``; ``n`` is a scalar or an ``(R,)`` vector of
    population sizes.  Uses :meth:`numpy.random.Generator.multinomial`
    broadcasting (last axis = probabilities), so the whole ensemble costs a
    single call regardless of ``R``.
    """
    alpha = np.asarray(alpha, dtype=float)
    alpha = np.clip(alpha, 0.0, None)
    totals = alpha.sum(axis=-1, keepdims=True)
    if np.any(totals <= 0):
        raise ValueError("adoption probabilities sum to zero")
    return rng.multinomial(n, alpha / totals).astype(np.int64)


def expected_next_counts(counts: np.ndarray, process: "ACProcessFunction") -> np.ndarray:
    """Exact one-step expected counts ``n · α(c)`` for an AC-process."""
    counts = np.asarray(counts, dtype=np.int64)
    n = int(counts.sum())
    return n * process.probabilities(counts)


class VoterFunction(ACProcessFunction):
    """Voter / Polling — Equation (1): ``α_i(c) = c_i / n``.

    Each node samples one uniform node and always adopts its color.
    Equivalent to 1-Majority and to 2-Majority (ties between two samples
    are broken by adopting a random sample, which is again uniform).
    """

    name = "voter"

    def probabilities(self, counts: np.ndarray) -> np.ndarray:
        counts = np.asarray(counts, dtype=float)
        return counts / counts.sum()

    def probabilities_batch(self, counts: np.ndarray) -> np.ndarray:
        counts = np.asarray(counts, dtype=float)
        return counts / counts.sum(axis=-1, keepdims=True)


class ThreeMajorityFunction(ACProcessFunction):
    """3-Majority — Equation (2): ``α_i = x_i (1 + x_i − ‖x‖₂²)``.

    Each node samples three uniform nodes; a color seen at least twice is
    adopted, otherwise a uniformly random sample's color is adopted.  The
    closed form follows [BCN+14]: with ``x = c/n``,

        α_i = x_i² + (1 − ‖x‖₂²) · x_i.

    The first term is the probability the first two samples agree on ``i``;
    the second covers disagreeing first samples followed by a Voter step.
    """

    name = "3-majority"

    def probabilities(self, counts: np.ndarray) -> np.ndarray:
        x = np.asarray(counts, dtype=float)
        x = x / x.sum()
        norm_sq = float(np.dot(x, x))
        alpha = x * (1.0 + x - norm_sq)
        # The closed form sums to exactly 1 analytically; renormalise away
        # floating-point dust so downstream multinomials stay happy.
        return alpha / alpha.sum()

    def probabilities_batch(self, counts: np.ndarray) -> np.ndarray:
        x = np.asarray(counts, dtype=float)
        x = x / x.sum(axis=-1, keepdims=True)
        norm_sq = np.sum(x * x, axis=-1, keepdims=True)
        alpha = x * (1.0 + x - norm_sq)
        return alpha / alpha.sum(axis=-1, keepdims=True)


class HMajorityFunction(ACProcessFunction):
    """General h-Majority: plurality of ``h`` uniform samples, random tie-break.

    Each node draws ``h`` independent uniform samples and adopts a color
    with the maximum multiplicity among them; if several colors tie for the
    maximum it adopts one of the tied colors uniformly at random.  For
    ``h = 1, 2`` this is exactly Voter, and for ``h = 3`` it coincides with
    :class:`ThreeMajorityFunction` (all-distinct samples tie at multiplicity
    one, and picking a uniform tied color equals picking a uniform sample).

    The exact probabilities are computed by enumerating the compositions of
    ``h`` over the currently supported colors, which costs
    ``O(C(h + k' − 1, k' − 1))`` for ``k'`` supported colors — fine for the
    hierarchy experiments (small ``h`` and ``k'``); use the agent-level
    simulator for large color spaces.
    """

    def __init__(self, h: int, max_support_colors: int = 12):
        if h < 1:
            raise ValueError("h must be at least 1")
        self.h = int(h)
        self.max_support_colors = int(max_support_colors)
        self.name = f"{h}-majority"

    def probabilities(self, counts: np.ndarray) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        x_full = counts / counts.sum()
        if self.h <= 2:
            # 1- and 2-Majority are exactly Voter (Section 5 of the paper).
            return np.asarray(x_full, dtype=float)
        support = np.flatnonzero(counts)
        if support.size > self.max_support_colors:
            raise ValueError(
                f"exact {self.h}-majority enumeration limited to "
                f"{self.max_support_colors} supported colors; got {support.size}. "
                "Use the agent-level simulator for wide configurations."
            )
        x = x_full[support]
        alpha_support = _h_majority_probabilities(x, self.h)
        alpha = np.zeros_like(x_full)
        alpha[support] = alpha_support
        return alpha / alpha.sum()


def _compositions(total: int, parts: int):
    """Yield all tuples of ``parts`` non-negative ints summing to ``total``."""
    if parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


def _h_majority_probabilities(x: np.ndarray, h: int) -> np.ndarray:
    """Exact adoption distribution of plurality-of-h with uniform tie-break."""
    k = x.size
    alpha = np.zeros(k, dtype=float)
    log_x = np.where(x > 0, np.log(np.where(x > 0, x, 1.0)), -np.inf)
    log_fact = [math.lgamma(m + 1) for m in range(h + 1)]
    for comp in _compositions(h, k):
        comp_arr = np.asarray(comp)
        if np.any((comp_arr > 0) & (x <= 0)):
            continue
        log_coeff = log_fact[h] - sum(log_fact[m] for m in comp)
        log_prob = log_coeff + float(np.sum(np.where(comp_arr > 0, comp_arr * log_x, 0.0)))
        prob = math.exp(log_prob)
        top = comp_arr.max()
        winners = np.flatnonzero(comp_arr == top)
        alpha[winners] += prob / winners.size
    return alpha


class PowerDriftFunction(ACProcessFunction):
    """A tunable synthetic AC-process: ``α_i ∝ x_i^β`` for ``β ≥ 1``.

    Not from the paper; a clean test bed for the dominance framework.
    ``β = 1`` is Voter; larger ``β`` strengthens the rich-get-richer drift.
    Used by tests and the framework benchmarks to exercise Theorem 2 on
    processes beyond the paper's three.
    """

    def __init__(self, beta: float):
        if beta < 1.0:
            raise ValueError("beta must be at least 1 for a consensus drift")
        self.beta = float(beta)
        self.name = f"power-drift(beta={beta:g})"

    def probabilities(self, counts: np.ndarray) -> np.ndarray:
        x = np.asarray(counts, dtype=float)
        x = x / x.sum()
        powered = np.where(x > 0, x**self.beta, 0.0)
        total = powered.sum()
        if total <= 0:
            raise ValueError("degenerate configuration for power drift")
        return powered / total

    def probabilities_batch(self, counts: np.ndarray) -> np.ndarray:
        x = np.asarray(counts, dtype=float)
        x = x / x.sum(axis=-1, keepdims=True)
        powered = np.where(x > 0, x**self.beta, 0.0)
        totals = powered.sum(axis=-1, keepdims=True)
        if np.any(totals <= 0):
            raise ValueError("degenerate configuration for power drift")
        return powered / totals


def adoption_matrix_over_rounds(
    process: ACProcessFunction,
    initial: Configuration,
    rounds: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Run ``rounds`` exact steps, returning the (rounds+1) × slots count matrix."""
    counts = initial.counts_array().copy()
    out = np.empty((rounds + 1, counts.size), dtype=np.int64)
    out[0] = counts
    for t in range(1, rounds + 1):
        counts = process.step_counts(counts, rng)
        out[t] = counts
    return out


__all__.append("adoption_matrix_over_rounds")
