"""The h-Majority hierarchy (Conjecture 1) and the Appendix-B counterexample.

Section 5 of the paper conjectures that ``(h+1)``-Majority is stochastically
faster than ``h``-Majority for every ``h``, and Appendix B shows that the
majorization machinery of Lemma 1 *cannot* prove it: to run the Lemma-1 /
Theorem-2 argument one would need

    c ⪰ c̃   ⇒   α^{(h+1)M}(c) ⪰ α^{hM}(c̃),

and Appendix B exhibits a comparable pair where this fails.  The worked
example uses the fraction vectors

    x̃ = (1/2, 1/2, 0, 0)   ⪰   x = (1/2, 1/6, 1/6, 1/6).

(The paper's displayed relation has the two sides transposed — with the
standard definition used everywhere else in the paper, ``(1/2, 1/2, 0, 0)``
majorizes ``(1/2, 1/6, 1/6, 1/6)``, since the latter's two-prefix is
``2/3 < 1``; the appendix's concluding sentence confirms this reading.)

By symmetry, ``(h+1)``-Majority maps ``x̃`` to expected fractions
``(1/2, 1/2, 0, 0)`` — its top-1 prefix stays ``1/2``.  But the
``3``-Majority mass on the top color of ``x`` works out to exactly
``7/12`` (Equation (24)): ``7/12 > 1/2``, so the image of the *majorizing*
configuration fails to majorize the image of the *majorized* one at
prefix length one.  Lemma 1's hypothesis is therefore unavailable, and
the conjecture remains open.

This module reproduces the computation exactly in rational arithmetic and
packages the counterexample for the test-suite and the E8 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from .ac_process import _compositions
from .majorization import majorizes

__all__ = [
    "CounterexampleReport",
    "appendix_b_counterexample",
    "three_majority_top_mass_exact",
    "equation_24_terms",
    "h_majority_probabilities_fraction",
    "hierarchy_probability_vectors",
]


def h_majority_probabilities_fraction(x: "list[Fraction]", h: int) -> "list[Fraction]":
    """Exact (rational) adoption distribution of plurality-of-h sampling.

    Mirrors the float enumerator in :mod:`repro.core.ac_process` but with
    :class:`fractions.Fraction` arithmetic, so the Appendix-B value comes
    out as the literal rational ``7/12`` rather than a float approximation.
    """
    if h < 1:
        raise ValueError("h must be at least 1")
    k = len(x)
    total = sum(x, Fraction(0))
    if total != 1:
        raise ValueError("x must be a probability vector of Fractions")
    alpha = [Fraction(0) for _ in range(k)]
    factorial = [Fraction(1)]
    for m in range(1, h + 1):
        factorial.append(factorial[-1] * m)
    for comp in _compositions(h, k):
        prob = Fraction(1)
        coeff = factorial[h]
        valid = True
        for count, xi in zip(comp, x):
            if count == 0:
                continue
            if xi == 0:
                valid = False
                break
            prob *= xi**count
            coeff /= factorial[count]
        if not valid:
            continue
        prob *= coeff
        top = max(comp)
        winners = [i for i, count in enumerate(comp) if count == top]
        share = prob / len(winners)
        for i in winners:
            alpha[i] += share
    return alpha


def equation_24_terms() -> "list[Fraction]":
    """The three terms of Equation (24), exactly as the paper displays them.

    For ``x = (1/2, 1/6, 1/6, 1/6)`` and three samples, color 1 is adopted
    when

    * all three samples show color 1:
      ``1 · C(3,0) · (1/2)³``,
    * exactly two samples show color 1 (the third shows any minority
      color, total mass ``3/6``):
      ``1 · C(3,1) · (1/2)² · (3/6)``,
    * one sample shows color 1 and the other two show *distinct* minority
      colors, after which the uniform tie-break picks color 1 with
      probability ``1/3``:
      ``(1/3) · C(3,2) · (1/2) · (3/6) · (2/6)``.

    The terms sum to ``7/12``.
    """
    half = Fraction(1, 2)
    term_all_three = Fraction(1) * 1 * half**3
    term_two = Fraction(1) * 3 * half**2 * Fraction(3, 6)
    term_one_tie = Fraction(1, 3) * 3 * half * Fraction(3, 6) * Fraction(2, 6)
    return [term_all_three, term_two, term_one_tie]


def three_majority_top_mass_exact() -> Fraction:
    """Equation (24): the 3-Majority mass on color 1 from ``(1/2, 1/6, 1/6, 1/6)``.

    Computed with the generic rational enumerator; the test-suite compares
    it against both the literal ``Fraction(7, 12)`` and the sum of
    :func:`equation_24_terms`.
    """
    x = [Fraction(1, 2), Fraction(1, 6), Fraction(1, 6), Fraction(1, 6)]
    alpha = h_majority_probabilities_fraction(x, h=3)
    return alpha[0]


@dataclass(frozen=True)
class CounterexampleReport:
    """All quantities of the Appendix-B counterexample, exactly.

    ``upper`` is the majorizing configuration ``(1/2, 1/2, 0, 0)`` fed to
    ``(h+1)``-Majority; ``lower`` is the majorized ``(1/2, 1/6, 1/6, 1/6)``
    fed to ``h``-Majority.  Lemma 1's hypothesis for the hierarchy would
    require ``alpha_upper ⪰ alpha_lower``; the report shows it fails.
    """

    h: int
    x_upper: tuple  # (1/2, 1/2, 0, 0)
    x_lower: tuple  # (1/2, 1/6, 1/6, 1/6)
    alpha_upper: tuple  # α^{(h+1)M}(x_upper) = x_upper by symmetry
    alpha_lower: tuple  # α^{hM}(x_lower); top mass 7/12 for h = 3
    inputs_comparable: bool  # x_upper ⪰ x_lower (True)
    images_majorize: bool  # alpha_upper ⪰ alpha_lower (False — the point)
    top_mass_lower: Fraction  # 7/12 for h = 3

    def lemma1_hypothesis_fails(self) -> bool:
        """True iff the inputs compare but the images do not — Appendix B's claim."""
        return self.inputs_comparable and not self.images_majorize


def appendix_b_counterexample(h: int = 3) -> CounterexampleReport:
    """Reproduce Appendix B: Lemma 1 cannot establish the h-Majority hierarchy.

    For the default ``h = 3`` this returns the paper's exact numbers: the
    symmetric two-color configuration is a fixed point of 4-Majority in
    expectation (top-1 prefix ``1/2``), while 3-Majority pushes ``7/12`` of
    the mass onto the top color of the *majorized* four-color
    configuration — so the required image majorization fails at prefix
    length one, by exactly ``7/12 − 1/2 = 1/12``.
    """
    x_upper = [Fraction(1, 2), Fraction(1, 2), Fraction(0), Fraction(0)]
    x_lower = [Fraction(1, 2), Fraction(1, 6), Fraction(1, 6), Fraction(1, 6)]
    alpha_upper = h_majority_probabilities_fraction(x_upper, h=h + 1)
    alpha_lower = h_majority_probabilities_fraction(x_lower, h=h)
    upper_floats = np.asarray([float(v) for v in x_upper])
    lower_floats = np.asarray([float(v) for v in x_lower])
    alpha_upper_floats = np.asarray([float(v) for v in alpha_upper])
    alpha_lower_floats = np.asarray([float(v) for v in alpha_lower])
    return CounterexampleReport(
        h=h,
        x_upper=tuple(x_upper),
        x_lower=tuple(x_lower),
        alpha_upper=tuple(alpha_upper),
        alpha_lower=tuple(alpha_lower),
        inputs_comparable=majorizes(upper_floats, lower_floats),
        images_majorize=majorizes(alpha_upper_floats, alpha_lower_floats),
        top_mass_lower=alpha_lower[0],
    )


def hierarchy_probability_vectors(x: "list[Fraction]", h_values: "list[int]") -> dict:
    """Exact ``α^{hM}(x)`` for several ``h`` on a common configuration.

    Convenience for the hierarchy explorer example: lets callers see how
    increasing ``h`` sharpens the drift toward the plurality color.
    """
    return {h: h_majority_probabilities_fraction(x, h) for h in h_values}
