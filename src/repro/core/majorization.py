"""Vector majorization and Schur-convexity primitives.

This module implements the order-theoretic machinery of Section 2 of the
paper (and of Marshall-Olkin-Arnold [MOA11], its main reference):

* the majorization preorder ``x ⪰ y`` on real vectors,
* weak (sub-)majorization,
* Lorenz curves and top-``j`` partial sums,
* Robin-Hood / T-transforms, which generate the preorder,
* doubly-stochastic mixing (Hardy-Littlewood-Pólya),
* numerical Schur-convexity checks used by the stochastic-majorization
  test functions of Definition 3.

All comparisons accept a ``tol`` so that probability vectors produced by
floating-point arithmetic compare robustly.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "sorted_desc",
    "top_j_sums",
    "majorizes",
    "weakly_submajorizes",
    "strictly_majorizes",
    "majorization_gap",
    "lorenz_curve",
    "t_transform",
    "robin_hood_chain",
    "doubly_stochastic_mix",
    "random_doubly_stochastic",
    "is_doubly_stochastic",
    "schur_convex_violations",
    "standard_schur_convex_family",
    "dalton_transfer_preserves",
]


def sorted_desc(x: Iterable[float]) -> np.ndarray:
    """Return ``x`` sorted non-increasingly as a float array (the paper's x↓)."""
    arr = np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=float)
    if arr.ndim != 1:
        raise ValueError("majorization is defined on one-dimensional vectors")
    return np.sort(arr)[::-1]


def top_j_sums(x: Iterable[float]) -> np.ndarray:
    """Partial sums of the sorted vector; entry ``j`` sums the ``j+1`` largest.

    These are exactly the Schur-convex test functions used to define the
    majorization preorder: ``x ⪰ y`` iff every top-j sum of ``x`` is at
    least the corresponding sum of ``y`` (with equal totals).
    """
    return np.cumsum(sorted_desc(x))


def _padded_prefix_pair(x, y) -> tuple:
    a = top_j_sums(x)
    b = top_j_sums(y)
    width = max(a.size, b.size)
    a = np.pad(a, (0, width - a.size), mode="edge")
    b = np.pad(b, (0, width - b.size), mode="edge")
    return a, b


def majorizes(x: Iterable[float], y: Iterable[float], tol: float = 1e-12) -> bool:
    """True iff ``x ⪰ y``: equal totals and dominating top-j partial sums.

    Vectors of different lengths are compared after zero padding, which is
    the standard convention (and the one the paper uses when comparing
    probability vectors whose supports differ).
    """
    a, b = _padded_prefix_pair(x, y)
    if abs(a[-1] - b[-1]) > tol * max(1.0, abs(a[-1]), abs(b[-1])):
        return False
    return bool(np.all(a >= b - tol))


def weakly_submajorizes(x: Iterable[float], y: Iterable[float], tol: float = 1e-12) -> bool:
    """True iff ``x ⪰_w y``: dominating top-j sums, totals unconstrained."""
    a, b = _padded_prefix_pair(x, y)
    return bool(np.all(a >= b - tol))


def strictly_majorizes(x: Iterable[float], y: Iterable[float], tol: float = 1e-12) -> bool:
    """True iff ``x ⪰ y`` and the sorted vectors differ."""
    if not majorizes(x, y, tol=tol):
        return False
    a = sorted_desc(x)
    b = sorted_desc(y)
    width = max(a.size, b.size)
    a = np.pad(a, (0, width - a.size))
    b = np.pad(b, (0, width - b.size))
    return bool(np.any(np.abs(a - b) > tol))


def majorization_gap(x: Iterable[float], y: Iterable[float]) -> float:
    """Largest violation of ``x ⪰ y`` over the top-j sums (0 when x ⪰ y).

    A quantitative companion to :func:`majorizes`: the maximum over ``j`` of
    ``top_j(y) - top_j(x)`` clipped below at zero.  Useful for reporting
    *how badly* dominance fails, e.g. in the Appendix-B counterexample.
    """
    a, b = _padded_prefix_pair(x, y)
    return float(np.clip(b - a, 0.0, None).max())


def lorenz_curve(x: Iterable[float]) -> np.ndarray:
    """Normalised Lorenz curve: top-j sums divided by the total.

    The consensus configuration has the extremal curve (1, 1, ..., 1); the
    all-singletons configuration has the diagonal.
    """
    sums = top_j_sums(x)
    total = sums[-1]
    if total == 0:
        raise ValueError("Lorenz curve undefined for zero-total vectors")
    return sums / total


def t_transform(x: Sequence[float], i: int, j: int, amount: float) -> np.ndarray:
    """Apply a Robin-Hood (Dalton) transfer moving ``amount`` from ``x[i]`` to ``x[j]``.

    Requires ``x[i] >= x[j]`` and ``0 <= amount <= (x[i] - x[j]) / 2`` so
    the result is majorized by ``x``.  T-transforms generate majorization:
    ``x ⪰ y`` iff ``y`` is reachable from ``x`` by finitely many of them
    (Muirhead / Hardy-Littlewood-Pólya).
    """
    arr = np.asarray(x, dtype=float).copy()
    if i == j:
        raise ValueError("transfer endpoints must differ")
    if arr[i] < arr[j]:
        raise ValueError("transfer must flow from the larger to the smaller entry")
    if amount < 0 or amount > (arr[i] - arr[j]) / 2:
        raise ValueError("transfer amount must lie in [0, (x_i - x_j)/2]")
    arr[i] -= amount
    arr[j] += amount
    return arr


def robin_hood_chain(
    x: Sequence[float],
    steps: int,
    rng: np.random.Generator,
    max_fraction: float = 1.0,
) -> list:
    """A chain ``x = z_0 ⪰ z_1 ⪰ ... ⪰ z_steps`` of random T-transforms.

    Each step picks a random ordered pair with distinct values and moves a
    random admissible amount.  Used by property-based tests to generate
    comparable vector pairs in bulk.
    """
    if not 0 < max_fraction <= 1.0:
        raise ValueError("max_fraction must lie in (0, 1]")
    chain = [np.asarray(x, dtype=float).copy()]
    for _ in range(steps):
        cur = chain[-1]
        order = np.argsort(cur)
        lo, hi = int(order[0]), int(order[-1])
        if cur[hi] == cur[lo]:
            chain.append(cur.copy())
            continue
        i = int(rng.integers(cur.size))
        j = int(rng.integers(cur.size))
        if cur[i] < cur[j]:
            i, j = j, i
        if i == j or cur[i] == cur[j]:
            i, j = hi, lo
        limit = (cur[i] - cur[j]) / 2 * max_fraction
        amount = float(rng.uniform(0.0, limit))
        chain.append(t_transform(cur, i, j, amount))
    return chain


def doubly_stochastic_mix(x: Sequence[float], matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix @ x`` after validating that ``matrix`` is doubly stochastic.

    By the Hardy-Littlewood-Pólya theorem the result is majorized by ``x``.
    """
    if not is_doubly_stochastic(matrix):
        raise ValueError("matrix is not doubly stochastic")
    arr = np.asarray(x, dtype=float)
    if matrix.shape != (arr.size, arr.size):
        raise ValueError("matrix shape does not match vector length")
    return matrix @ arr


def random_doubly_stochastic(d: int, rng: np.random.Generator, mixes: int = 32) -> np.ndarray:
    """A random doubly stochastic matrix: a convex mix of random permutations.

    By Birkhoff-von Neumann every doubly stochastic matrix arises this way;
    we sample ``mixes`` permutation matrices with Dirichlet weights.
    """
    if d <= 0:
        raise ValueError("dimension must be positive")
    weights = rng.dirichlet(np.ones(mixes))
    out = np.zeros((d, d))
    for w in weights:
        perm = rng.permutation(d)
        out[np.arange(d), perm] += w
    return out


def is_doubly_stochastic(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """Check non-negativity and unit row/column sums."""
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        return False
    if np.any(m < -tol):
        return False
    ones = np.ones(m.shape[0])
    return bool(
        np.allclose(m.sum(axis=0), ones, atol=tol)
        and np.allclose(m.sum(axis=1), ones, atol=tol)
    )


def standard_schur_convex_family(d: int) -> list:
    """A finite family of Schur-convex functions on R^d used as test functions.

    Contains the top-j sums for every ``j`` (which *characterise*
    majorization together with the total), the squared 2-norm, the maximum,
    and the negative entropy — all classic Schur-convex functions.  The
    family is used to falsify claimed stochastic majorizations
    (Definition 3) empirically.
    """
    family: list = []

    def _top_j(j: int) -> Callable:
        def phi(x: np.ndarray) -> float:
            return float(np.sort(np.asarray(x, dtype=float))[::-1][: j + 1].sum())

        phi.__name__ = f"top_{j + 1}_sum"
        return phi

    for j in range(d):
        family.append(_top_j(j))

    def squared_norm(x: np.ndarray) -> float:
        arr = np.asarray(x, dtype=float)
        return float(np.dot(arr, arr))

    family.append(squared_norm)

    def maximum(x: np.ndarray) -> float:
        return float(np.max(x))

    family.append(maximum)

    def negative_entropy(x: np.ndarray) -> float:
        arr = np.asarray(x, dtype=float)
        total = arr.sum()
        if total <= 0:
            return 0.0
        p = arr / total
        nz = p[p > 0]
        return float(np.sum(nz * np.log(nz)))

    family.append(negative_entropy)
    return family


def schur_convex_violations(
    phi: Callable,
    dimension: int,
    rng: np.random.Generator,
    trials: int = 200,
    tol: float = 1e-9,
) -> int:
    """Count observed violations of Schur-convexity for ``phi``.

    Samples random pairs ``x ⪰ y`` (via Robin-Hood transfers from a random
    base vector) and counts how often ``phi(x) < phi(y) - tol``.  Returns 0
    for genuinely Schur-convex functions; used to validate the library's own
    test-function family.
    """
    violations = 0
    for _ in range(trials):
        base = rng.random(dimension)
        chain = robin_hood_chain(base, steps=3, rng=rng)
        x, y = chain[0], chain[-1]
        if phi(x) < phi(y) - tol:
            violations += 1
    return violations


def dalton_transfer_preserves(
    x: Sequence[float], y: Sequence[float], max_steps: int = 10_000, tol: float = 1e-9
) -> bool:
    """Constructively verify ``x ⪰ y`` by exhibiting a T-transform chain.

    Implements the classic algorithmic proof of the Hardy-Littlewood-Pólya
    theorem: repeatedly transfer from the first sorted position where the
    prefix of ``x`` still exceeds that of ``y``.  Returns True iff a chain
    from ``x↓`` to ``y↓`` is found, i.e. iff ``x ⪰ y``.  Exists mainly to
    cross-validate :func:`majorizes` in tests.
    """
    a = sorted_desc(x)
    b = sorted_desc(y)
    width = max(a.size, b.size)
    a = np.pad(a, (0, width - a.size))
    b = np.pad(b, (0, width - b.size))
    if abs(a.sum() - b.sum()) > tol * max(1.0, abs(a.sum())):
        return False
    for _ in range(max_steps):
        a = np.sort(a)[::-1]
        diff = a - b
        if np.all(np.abs(diff) <= tol):
            return True
        surplus_idx = np.flatnonzero(diff > tol)
        deficit_idx = np.flatnonzero(diff < -tol)
        if surplus_idx.size == 0 or deficit_idx.size == 0:
            return False
        i = int(surplus_idx[0])
        j = int(deficit_idx[0])
        if i > j:
            # A deficit before any surplus means some top-j sum of y exceeds
            # x's: majorization fails.
            return False
        amount = min(a[i] - b[i], b[j] - a[j], (a[i] - a[j]) / 2 if a[i] > a[j] else 0.0)
        if amount <= tol:
            # Direct transfer blocked; fall back to the prefix-sum criterion.
            return majorizes(a, b, tol=tol)
        a = t_transform(a, i, j, amount)
    return majorizes(a, b, tol=tol)


def all_integer_partition_configs(n: int, max_parts: int | None = None):
    """Yield all sorted count vectors (integer partitions of ``n``) as tuples.

    These are the anonymity classes of the configuration space; exact
    engines and dominance checkers enumerate them for small ``n``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    limit = max_parts if max_parts is not None else n

    def _partitions(remaining: int, largest: int, parts_left: int):
        if remaining == 0:
            yield ()
            return
        if parts_left == 0:
            return
        for first in range(min(remaining, largest), 0, -1):
            for rest in _partitions(remaining - first, first, parts_left - 1):
                yield (first,) + rest

    yield from _partitions(n, n, limit)


__all__.append("all_integer_partition_configs")
