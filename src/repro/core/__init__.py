"""Core framework: configurations, majorization, AC-processes, couplings.

This package implements the paper's primary contribution — the anonymous
consensus process (AC-process) comparison framework of Section 2 — plus
the configuration-space and majorization substrate it stands on:

* :mod:`repro.core.configuration` — population states and the ``⪰`` order;
* :mod:`repro.core.majorization` — majorization / Schur-convexity toolbox;
* :mod:`repro.core.ac_process` — Definition 1, the process functions of
  Voter (Eq. 1), 3-Majority (Eq. 2), and general h-Majority;
* :mod:`repro.core.dominance` — Definition 2 with exact exhaustive
  verification (the executable Lemma 2);
* :mod:`repro.core.coupling` — Lemma 1 / Theorems 2-3 made constructive via
  Strassen transportation LPs and stochastic-majorization certificates;
* :mod:`repro.core.hierarchy` — Conjecture 1 tooling and the exact
  Appendix-B ``7/12`` counterexample.
"""

from .ac_process import (
    ACProcessFunction,
    HMajorityFunction,
    PowerDriftFunction,
    ThreeMajorityFunction,
    VoterFunction,
    adoption_matrix_over_rounds,
    expected_next_counts,
    multinomial_step,
)
from .configuration import Configuration
from .coupling import (
    CoupledTrajectory,
    CouplingResult,
    FiniteDistribution,
    ReductionTimeComparison,
    estimate_reduction_time_dominance,
    one_step_distribution,
    run_coupled_chains,
    stochastic_majorization_certificate,
    strassen_coupling,
)
from .dominance import (
    DominancePair,
    DominanceReport,
    check_dominance_on_pair,
    find_dominance_counterexample,
    iter_comparable_pairs,
    lemma2_margin,
    verify_dominance_exhaustive,
)
from .hierarchy import (
    CounterexampleReport,
    appendix_b_counterexample,
    equation_24_terms,
    h_majority_probabilities_fraction,
    hierarchy_probability_vectors,
    three_majority_top_mass_exact,
)
from .majorization import (
    all_integer_partition_configs,
    dalton_transfer_preserves,
    lorenz_curve,
    majorization_gap,
    majorizes,
    robin_hood_chain,
    sorted_desc,
    standard_schur_convex_family,
    strictly_majorizes,
    t_transform,
    top_j_sums,
    weakly_submajorizes,
)

__all__ = [
    "ACProcessFunction",
    "Configuration",
    "CoupledTrajectory",
    "CouplingResult",
    "CounterexampleReport",
    "DominancePair",
    "DominanceReport",
    "FiniteDistribution",
    "HMajorityFunction",
    "PowerDriftFunction",
    "ReductionTimeComparison",
    "ThreeMajorityFunction",
    "VoterFunction",
    "adoption_matrix_over_rounds",
    "all_integer_partition_configs",
    "appendix_b_counterexample",
    "check_dominance_on_pair",
    "dalton_transfer_preserves",
    "equation_24_terms",
    "estimate_reduction_time_dominance",
    "expected_next_counts",
    "find_dominance_counterexample",
    "h_majority_probabilities_fraction",
    "hierarchy_probability_vectors",
    "iter_comparable_pairs",
    "lemma2_margin",
    "lorenz_curve",
    "majorization_gap",
    "majorizes",
    "multinomial_step",
    "one_step_distribution",
    "robin_hood_chain",
    "run_coupled_chains",
    "sorted_desc",
    "standard_schur_convex_family",
    "stochastic_majorization_certificate",
    "strassen_coupling",
    "strictly_majorizes",
    "t_transform",
    "three_majority_top_mass_exact",
    "top_j_sums",
    "verify_dominance_exhaustive",
    "weakly_submajorizes",
]
