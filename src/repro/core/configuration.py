"""Configuration space of anonymous consensus processes.

The system state after any round is described by a vector ``c`` whose
``i``-th component counts the nodes currently supporting color ``i``
(Section 2.1 of the paper).  This module provides :class:`Configuration`,
an immutable, validated wrapper around such a vector, together with the
derived quantities used throughout the paper: the number of remaining
colors, the bias, the sorted tail sums used by vector majorization, and
the squared 2-norm of the fraction vector that appears in the
3-Majority process function (Equation (2)).

Configurations compare with ``>=`` in the majorization preorder, which is
the paper's measure of closeness to consensus: the consensus configuration
majorizes every other configuration, and the ``n``-color (leader election)
configuration is minimal.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Configuration"]


def _as_count_array(counts: Iterable[int]) -> np.ndarray:
    """Convert ``counts`` into a validated non-negative int64 numpy array."""
    arr = np.asarray(list(counts) if not isinstance(counts, np.ndarray) else counts)
    if arr.ndim != 1:
        raise ValueError(f"configuration must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("configuration must contain at least one color slot")
    if not np.issubdtype(arr.dtype, np.integer):
        rounded = np.rint(arr)
        if not np.allclose(arr, rounded):
            raise ValueError("configuration counts must be integers")
        arr = rounded
    arr = arr.astype(np.int64)
    if np.any(arr < 0):
        raise ValueError("configuration counts must be non-negative")
    return arr


class Configuration:
    """An immutable population state ``c`` with ``sum(c) = n``.

    Parameters
    ----------
    counts:
        Support of each color.  Zero entries are allowed (and meaningful:
        they keep color indices stable over time).

    Examples
    --------
    >>> c = Configuration([3, 1, 0])
    >>> c.num_nodes
    4
    >>> c.num_colors
    2
    >>> c.is_consensus
    False
    >>> Configuration([4, 0, 0]).is_consensus
    True
    """

    __slots__ = ("_counts", "_hash")

    def __init__(self, counts: Iterable[int]):
        arr = _as_count_array(counts)
        total = int(arr.sum())
        if total == 0:
            raise ValueError("configuration must describe at least one node")
        arr.setflags(write=False)
        self._counts = arr
        self._hash = hash((total, tuple(int(v) for v in arr)))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_assignment(cls, colors: Sequence[int], num_slots: int | None = None) -> "Configuration":
        """Build a configuration from a per-node color assignment.

        ``colors[u]`` is the color id of node ``u``.  ``num_slots`` pads the
        count vector with zero entries so that configurations produced from
        different assignments share a common color index space.
        """
        colors_arr = np.asarray(colors, dtype=np.int64)
        if colors_arr.ndim != 1 or colors_arr.size == 0:
            raise ValueError("assignment must be a non-empty one-dimensional sequence")
        if np.any(colors_arr < 0):
            raise ValueError("color ids must be non-negative")
        width = int(colors_arr.max()) + 1
        if num_slots is not None:
            if num_slots < width:
                raise ValueError(f"num_slots={num_slots} too small for max color id {width - 1}")
            width = num_slots
        return cls(np.bincount(colors_arr, minlength=width))

    @classmethod
    def monochromatic(cls, n: int, color: int = 0, num_slots: int | None = None) -> "Configuration":
        """The consensus configuration: all ``n`` nodes support ``color``."""
        if n <= 0:
            raise ValueError("n must be positive")
        width = max(color + 1, num_slots or 0)
        counts = np.zeros(width, dtype=np.int64)
        counts[color] = n
        return cls(counts)

    @classmethod
    def singletons(cls, n: int) -> "Configuration":
        """The n-color (leader election) configuration: pairwise distinct colors."""
        if n <= 0:
            raise ValueError("n must be positive")
        return cls(np.ones(n, dtype=np.int64))

    @classmethod
    def balanced(cls, n: int, k: int) -> "Configuration":
        """``k`` colors with supports as equal as possible (max bias 1)."""
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        base, extra = divmod(n, k)
        counts = np.full(k, base, dtype=np.int64)
        counts[:extra] += 1
        return cls(counts)

    @classmethod
    def biased(cls, n: int, k: int, bias: int) -> "Configuration":
        """``k`` colors, near-balanced except color 0 leads color 1 by ``bias``.

        The *bias* is the paper's notion (footnote 3): the difference between
        the supports of the most and second-most common colors.
        """
        if not 2 <= k <= n:
            raise ValueError(f"need 2 <= k <= n, got k={k}, n={n}")
        if bias < 0:
            raise ValueError("bias must be non-negative")
        if bias > n:
            raise ValueError(f"bias={bias} exceeds n={n}")
        # Construction: tail colors 2..k-1 get q nodes each, the leader and
        # runner-up absorb the remainder in pairs (preserving the gap):
        #   c1 = q + s,  c0 = c1 + bias,  with  2s = (n - bias) mod k.
        q, r = divmod(n - bias, k)
        counts = np.full(k, q, dtype=np.int64)
        if r % 2 == 1:
            # Make the remainder even by docking one tail color.
            if k >= 3 and q >= 1:
                counts[k - 1] -= 1
                r += 1
            else:
                raise ValueError(
                    f"bias={bias} not achievable exactly with n={n}, k={k} "
                    "(parity obstruction); adjust bias by one"
                )
        s = r // 2
        counts[1] += s
        counts[0] += s + bias
        if counts.min() < 0 or counts.sum() != n:
            raise ValueError(f"bias={bias} not achievable with n={n}, k={k}")
        return cls(counts)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def counts_array(self) -> np.ndarray:
        """The (read-only) underlying int64 count vector."""
        return self._counts

    @property
    def counts(self) -> tuple:
        """Counts as a plain tuple of ints."""
        return tuple(int(v) for v in self._counts)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ``n``."""
        return int(self._counts.sum())

    @property
    def num_slots(self) -> int:
        """Length of the count vector (including zero entries)."""
        return int(self._counts.size)

    @property
    def num_colors(self) -> int:
        """Number of *remaining* colors (non-zero entries)."""
        return int(np.count_nonzero(self._counts))

    @property
    def is_consensus(self) -> bool:
        """True iff a single color supports all nodes."""
        return self.num_colors == 1

    @property
    def max_support(self) -> int:
        """Support of the most common color (the paper's ``ℓ``)."""
        return int(self._counts.max())

    @property
    def bias(self) -> int:
        """Support gap between the most and second-most common colors."""
        if self._counts.size == 1:
            return int(self._counts[0])
        top_two = np.partition(self._counts, self._counts.size - 2)[-2:]
        return int(top_two[1] - top_two[0])

    def support(self, color: int) -> int:
        """Support of ``color`` (0 for out-of-range colors)."""
        if 0 <= color < self._counts.size:
            return int(self._counts[color])
        return 0

    def plurality_colors(self) -> tuple:
        """All colors whose support attains :attr:`max_support`."""
        top = self._counts.max()
        return tuple(int(i) for i in np.flatnonzero(self._counts == top))

    def remaining_colors(self) -> tuple:
        """Color ids with non-zero support."""
        return tuple(int(i) for i in np.flatnonzero(self._counts))

    # ------------------------------------------------------------------
    # Derived vectors
    # ------------------------------------------------------------------
    def fractions(self) -> np.ndarray:
        """The fraction vector ``x = c / n`` used by the process functions."""
        return self._counts / self.num_nodes

    def sorted_desc(self) -> np.ndarray:
        """Counts sorted non-increasingly (the paper's ``c↓``)."""
        out = np.sort(self._counts)[::-1]
        return out

    def prefix_sums_desc(self) -> np.ndarray:
        """Partial sums of the sorted counts: entry ``j`` is the total support
        of the ``j+1`` largest colors — the quantities compared by ``⪰``."""
        return np.cumsum(self.sorted_desc())

    def squared_two_norm_of_fractions(self) -> float:
        """``‖c/n‖₂²``, the collision probability of two uniform samples.

        This is the quantity appearing in the 3-Majority process function
        (Equation (2)) and in footnote 2's expected-drift identity.
        """
        x = self.fractions()
        return float(np.dot(x, x))

    def entropy(self) -> float:
        """Shannon entropy (nats) of the color distribution."""
        x = self.fractions()
        nz = x[x > 0]
        return float(-np.sum(nz * np.log(nz)))

    def monochromatic_fraction(self) -> float:
        """Fraction of nodes on the plurality color."""
        return self.max_support / self.num_nodes

    # ------------------------------------------------------------------
    # Majorization preorder
    # ------------------------------------------------------------------
    def majorizes(self, other: "Configuration") -> bool:
        """True iff ``self ⪰ other`` in the vector majorization preorder.

        Both configurations must describe the same number of nodes; slot
        vectors of different lengths are compared after implicit zero
        padding (zero entries never affect majorization).
        """
        if self.num_nodes != other.num_nodes:
            raise ValueError(
                f"cannot compare configurations of {self.num_nodes} and "
                f"{other.num_nodes} nodes under majorization"
            )
        a = self.prefix_sums_desc()
        b = other.prefix_sums_desc()
        width = max(a.size, b.size)
        a = np.pad(a, (0, width - a.size), mode="edge")
        b = np.pad(b, (0, width - b.size), mode="edge")
        return bool(np.all(a >= b))

    def __ge__(self, other: "Configuration") -> bool:
        return self.majorizes(other)

    def __le__(self, other: "Configuration") -> bool:
        return other.majorizes(self)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        if self._counts.size != other._counts.size:
            # Equal iff they agree after padding with zeros.
            small, big = sorted((self._counts, other._counts), key=len)
            return bool(
                np.array_equal(big[: small.size], small) and not big[small.size:].any()
            )
        return bool(np.array_equal(self._counts, other._counts))

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return self.num_slots

    def __getitem__(self, color: int) -> int:
        return int(self._counts[color])

    def __iter__(self):
        return iter(self.counts)

    def __repr__(self) -> str:
        shown = ", ".join(str(int(v)) for v in self._counts[:16])
        suffix = ", ..." if self._counts.size > 16 else ""
        return (
            f"Configuration([{shown}{suffix}] n={self.num_nodes} "
            f"colors={self.num_colors})"
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def canonical(self) -> "Configuration":
        """Sorted-descending representative of the anonymity class.

        AC-process dynamics are invariant under relabelling colors, so the
        sorted vector (with trailing zeros dropped) is a canonical form.
        """
        sorted_counts = self.sorted_desc()
        nz = int(np.count_nonzero(sorted_counts))
        return Configuration(sorted_counts[: max(nz, 1)])

    def with_slots(self, num_slots: int) -> "Configuration":
        """Zero-pad (or validate) the count vector to ``num_slots`` entries."""
        if num_slots < self.num_slots:
            if self._counts[num_slots:].any():
                raise ValueError("cannot drop slots with non-zero support")
            return Configuration(self._counts[:num_slots])
        padded = np.zeros(num_slots, dtype=np.int64)
        padded[: self.num_slots] = self._counts
        return Configuration(padded)

    def to_assignment(self) -> np.ndarray:
        """Expand into an arbitrary per-node color assignment (sorted by color)."""
        return np.repeat(np.arange(self.num_slots, dtype=np.int64), self._counts)

    def theoretical_voter_rounds_hint(self) -> float:
        """The paper's Lemma-3 style scale ``(n / k) log n`` for this state.

        Purely a convenience for harness code; not a guarantee.
        """
        n = self.num_nodes
        k = max(self.num_colors, 1)
        return (n / k) * math.log(max(n, 2))
