"""Protocol dominance (Definition 2) and its exact verification.

A process ``P`` *dominates* ``P'`` if for all configurations ``c ⪰ c̃`` the
expected next configurations satisfy ``E[P(c)] ⪰ E[P'(c̃)]``.  For
AC-processes this is equivalent to the process functions preserving
majorization: ``c ⪰ c̃ ⇒ α(c) ⪰ α̃(c̃)``.

This module provides:

* :func:`check_dominance_on_pair` — the pointwise condition;
* :func:`verify_dominance_exhaustive` — exact verification over *every*
  pair of comparable configurations of a small system, by enumerating
  integer partitions (anonymity classes are enough, since process
  functions of the paper's processes are symmetric under color
  relabelling);
* :func:`find_dominance_counterexample` — search for violating pairs (used
  to reproduce the Appendix-B negative result);
* :func:`lemma2_margin` — the explicit inequality (Equation (3)-(5)) in
  the paper's proof that 3-Majority dominates Voter, as a computable
  margin that must be non-negative.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from .ac_process import ACProcessFunction
from .configuration import Configuration
from .majorization import all_integer_partition_configs, majorizes, majorization_gap

__all__ = [
    "DominancePair",
    "DominanceReport",
    "check_dominance_on_pair",
    "iter_comparable_pairs",
    "verify_dominance_exhaustive",
    "find_dominance_counterexample",
    "lemma2_margin",
]


@dataclass(frozen=True)
class DominancePair:
    """One comparable configuration pair with its dominance verdict."""

    upper: tuple
    lower: tuple
    holds: bool
    gap: float


@dataclass
class DominanceReport:
    """Outcome of an exhaustive dominance verification."""

    dominant_name: str
    dominated_name: str
    n: int
    pairs_checked: int = 0
    violations: list = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """True iff dominance held on every comparable pair checked."""
        return not self.violations

    def worst_violation(self) -> "DominancePair | None":
        if not self.violations:
            return None
        return max(self.violations, key=lambda pair: pair.gap)

    def summary(self) -> str:
        verdict = "HOLDS" if self.holds else f"FAILS ({len(self.violations)} pairs)"
        return (
            f"dominance[{self.dominant_name} ⪰ {self.dominated_name}] on n={self.n}: "
            f"{verdict} over {self.pairs_checked} comparable pairs"
        )


def check_dominance_on_pair(
    dominant: ACProcessFunction,
    dominated: ACProcessFunction,
    upper: Configuration,
    lower: Configuration,
    tol: float = 1e-10,
) -> DominancePair:
    """Check ``α(upper) ⪰ α̃(lower)`` for one comparable pair.

    Raises if ``upper`` does not majorize ``lower`` (the condition is only
    quantified over comparable pairs).
    """
    if not upper.majorizes(lower):
        raise ValueError("dominance condition only applies when upper ⪰ lower")
    alpha_upper = dominant.probabilities_for(upper)
    alpha_lower = dominated.probabilities_for(lower)
    holds = majorizes(alpha_upper, alpha_lower, tol=tol)
    gap = majorization_gap(alpha_upper, alpha_lower)
    return DominancePair(
        upper=upper.counts, lower=lower.counts, holds=holds, gap=gap
    )


def iter_comparable_pairs(
    n: int, max_colors: int | None = None
) -> Iterator[tuple]:
    """Yield all ordered pairs ``(c, c̃)`` of partitions of ``n`` with ``c ⪰ c̃``.

    Configurations are represented canonically (sorted, no trailing zeros);
    this is sufficient for symmetric process functions.  Pairs include the
    diagonal ``(c, c)`` since ``⪰`` is reflexive.
    """
    partitions = [
        Configuration(p) for p in all_integer_partition_configs(n, max_parts=max_colors)
    ]
    for upper, lower in itertools.product(partitions, repeat=2):
        if upper.majorizes(lower):
            yield upper, lower


def verify_dominance_exhaustive(
    dominant: ACProcessFunction,
    dominated: ACProcessFunction,
    n: int,
    max_colors: int | None = None,
    tol: float = 1e-10,
) -> DominanceReport:
    """Exactly verify Definition 2 over every comparable partition pair of ``n``.

    This is the library's executable analogue of the paper's Lemma 2 proof:
    for 3-Majority vs Voter the report must come back clean for every
    ``n`` (we test a range of them), whereas e.g. 4-Majority vs 3-Majority
    yields violations mirroring Appendix B.
    """
    report = DominanceReport(
        dominant_name=dominant.name, dominated_name=dominated.name, n=n
    )
    for upper, lower in iter_comparable_pairs(n, max_colors=max_colors):
        pair = check_dominance_on_pair(dominant, dominated, upper, lower, tol=tol)
        report.pairs_checked += 1
        if not pair.holds:
            report.violations.append(pair)
    return report


def find_dominance_counterexample(
    dominant: ACProcessFunction,
    dominated: ACProcessFunction,
    n_values: Iterable[int],
    max_colors: int | None = None,
    tol: float = 1e-10,
) -> "DominancePair | None":
    """Return the first comparable pair violating dominance, or None.

    Searches increasing system sizes; used to reproduce the Appendix-B
    demonstration that ``α^{hM}(c) ⪰ α^{(h+1)M}(c̃)`` can fail.
    """
    for n in n_values:
        report = verify_dominance_exhaustive(
            dominant, dominated, n, max_colors=max_colors, tol=tol
        )
        if not report.holds:
            return report.worst_violation()
    return None


def lemma2_margin(config_upper: Configuration, config_lower: Configuration) -> np.ndarray:
    """The explicit prefix-sum margins from the paper's proof of Lemma 2.

    For ``x = c/n`` sorted non-increasingly, the proof shows that for every
    prefix length ``k``

        Σ_{i≤k} α^{3M}_i(c) − Σ_{i≤k} α^{V}_i(c̃)
            ≥ Σ_{i≤k} x_i² − ‖x‖₂² Σ_{i≤k} x_i  ≥ 0,

    using ``c ⪰ c̃`` for the first inequality and the monotonicity of
    ``(Σ x_i²)/(Σ x_i)`` in the prefix length for the second.  This
    function returns the right-hand margin vector (one entry per prefix
    length); the paper's claim is that it is entry-wise non-negative, which
    the test suite asserts for exhaustively enumerated configurations.
    """
    if not config_upper.majorizes(config_lower):
        raise ValueError("lemma 2 margin defined for comparable pairs only")
    x = np.sort(config_upper.fractions())[::-1]
    norm_sq = float(np.dot(x, x))
    prefix_sq = np.cumsum(x**2)
    prefix = np.cumsum(x)
    return prefix_sq - norm_sq * prefix
