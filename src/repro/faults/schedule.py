"""Composable fault schedules and their engine-facing runtimes.

:class:`FaultSchedule` mirrors
:class:`~repro.adversary.AdversarySchedule`: a tuple of
:class:`~repro.faults.models.FaultModel`\\ s sharing one activation
window ``[start, stop)``.  The engines never call models directly —
they ask the schedule for a *runtime*, a small stateful object holding
the per-replica fault state (crashed masks / crashed counts) so that
one immutable schedule can drive any number of independent replicas.

Two runtimes, one per chain representation:

* :class:`_AgentFaultRuntime` — produces the boolean **claimed mask**
  for one round over a color vector (``(n,)``) or matrix (``(R, n)``).
  The engine applies the honest update, then calls :meth:`resolve`,
  which reverts frozen victims to their previous color and overwrites
  rewritten victims (Byzantine) with their replacement colors.
* :class:`_CountsFaultRuntime` — *replaces* the count-chain transition:
  with ``f`` frozen nodes per color the faulty round is exactly
  ``c' = f + Mult(n − |f|, α(c))``, i.e. only mobile nodes resample,
  while α is still computed from the full visible configuration
  (frozen colors stay on the message board).  This is the precise
  projection of the agent-level semantics onto the count chain, so the
  counts backends remain exact, not approximate.

Round indices are 0-based completed-round counters — the same
convention :class:`~repro.adversary.AdversarySchedule` uses — so a
window behaves identically in the sequential, ensemble and sharded
engines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ac_process import multinomial_step, multinomial_step_batch
from .models import FaultModel

__all__ = ["FaultSchedule", "as_fault_schedule"]


@dataclass(frozen=True)
class FaultSchedule:
    """A tuple of fault models active during the window ``[start, stop)``.

    Composable by construction: ``FaultSchedule((CrashStop(p),
    MessageLoss(q)))`` freezes crash victims first and draws loss
    victims from the remaining live pool, keeping the two victim sets
    disjoint within a round.
    """

    faults: "tuple[FaultModel, ...]"
    start: int = 0
    stop: "int | None" = None

    def __post_init__(self):
        faults = self.faults
        if isinstance(faults, FaultModel):
            faults = (faults,)
        faults = tuple(faults)
        for model in faults:
            if not isinstance(model, FaultModel):
                raise TypeError(
                    f"FaultSchedule expects FaultModel instances, got {model!r}"
                )
        object.__setattr__(self, "faults", faults)
        if self.start < 0:
            raise ValueError("fault window start must be non-negative")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError("fault window stop must exceed start")

    def active(self, round_index: int) -> bool:
        if round_index < self.start:
            return False
        return self.stop is None or round_index < self.stop

    def is_trivial(self) -> bool:
        """True when no model can ever freeze a node."""
        return all(model.is_trivial() for model in self.faults)

    @property
    def supports_counts(self) -> bool:
        """Every model has an exact count-level projection."""
        return all(model.supports_counts for model in self.faults)

    def describe(self) -> str:
        window = f"[{self.start}, {'∞' if self.stop is None else self.stop})"
        models = ", ".join(repr(model) for model in self.faults)
        return f"faults {window}: {models}"

    # -- engine entry points ----------------------------------------------

    def agent_runtime(self, num_slots: "int | None" = None) -> "_AgentFaultRuntime":
        """Fresh per-replica (or per-matrix) agent-mask runtime.

        ``num_slots`` (the color-space width) is required only when the
        schedule contains a rewriting model — replacement colors must
        know the space they draw from.
        """
        return _AgentFaultRuntime(self, num_slots)

    def counts_runtime(self, function) -> "_CountsFaultRuntime":
        """Fresh count-chain runtime stepping with ``function``'s α."""
        if not self.supports_counts:
            raise ValueError(
                "this fault schedule has no count-level projection; "
                "use an agent backend"
            )
        return _CountsFaultRuntime(self, function)


def as_fault_schedule(faults) -> "FaultSchedule | None":
    """Normalise the plan-level ``faults=`` axis to a live schedule.

    Accepts ``None``, a bare :class:`FaultModel`, or a
    :class:`FaultSchedule`; collapses trivial schedules (all rates zero,
    or no models) to ``None`` so the engines take the unmodified
    fault-free path — consuming not a single extra random draw, which is
    what makes rate-0 faults bit-for-bit identical to no faults.
    """
    if faults is None:
        return None
    if isinstance(faults, FaultModel):
        faults = FaultSchedule((faults,))
    if not isinstance(faults, FaultSchedule):
        raise TypeError(
            "faults must be a FaultModel or FaultSchedule, got "
            f"{type(faults).__name__}"
        )
    if not faults.faults or faults.is_trivial():
        return None
    return faults


class _AgentFaultRuntime:
    """Per-round claimed masks over one color vector or matrix.

    State is lazily shaped from the first mask request, so the same
    runtime class serves the sequential ``(n,)`` path and the batched
    ``(R, n)`` path; the batched ensemble additionally calls
    :meth:`compact` when replicas retire so fault state rows stay
    aligned with the surviving color rows.

    Protocol per round: the engine calls :meth:`round_mask` *before* the
    honest update (victim draws precede update draws on the stream),
    applies the update, then calls :meth:`resolve` with the pre- and
    post-update colors.  ``resolve`` reverts frozen victims and
    overwrites rewritten (Byzantine) victims — replacement draws land
    *after* the update draws, again round-deterministically.
    """

    def __init__(self, schedule: FaultSchedule, num_slots: "int | None" = None):
        self._schedule = schedule
        self._num_slots = num_slots
        self._states = None
        self._round = None

    def round_mask(self, round_index: int, rng, shape) -> np.ndarray:
        if self._states is None:
            self._states = [
                model.init_agent_state(shape) for model in self._schedule.faults
            ]
        claimed = np.zeros(shape, dtype=bool)
        revert = np.zeros(shape, dtype=bool)
        rewrites = []
        active = self._schedule.active(round_index)
        for model, state in zip(self._schedule.faults, self._states):
            extended = model.agent_round(state, claimed, active, rng)
            victims = extended & ~claimed
            claimed = extended
            if model.rewrites:
                # Recorded whenever the model *could* act this round
                # (not only when victims landed), so replacement draws
                # stay round-deterministic.
                if active and not model.is_trivial():
                    rewrites.append((model, state, victims))
            else:
                revert |= victims
        self._round = (revert, rewrites)
        return claimed

    def resolve(self, previous: np.ndarray, updated: np.ndarray, rng) -> np.ndarray:
        """Apply this round's verdicts to the post-update colors."""
        revert, rewrites = self._round
        colors = updated
        if revert.any():
            colors = np.where(revert, previous, colors)
        for model, state, victims in rewrites:
            if self._num_slots is None:
                raise ValueError(
                    "a rewriting fault model needs agent_runtime(num_slots)"
                )
            replacement = model.agent_replacement(
                state, victims, previous, rng, self._num_slots
            )
            colors = np.where(victims, replacement, colors)
        return colors

    def compact(self, keep: np.ndarray) -> None:
        """Drop retired replica rows from every stateful model."""
        if self._states is None:
            return
        for state in self._states:
            if state:
                for key, value in state.items():
                    state[key] = value[keep]


class _CountsFaultRuntime:
    """The faulty count-chain transition
    ``c' = f + Mult(n − |claimed|, α(c)) + Σ rewrites``."""

    def __init__(self, schedule: FaultSchedule, function):
        self._schedule = schedule
        self._function = function
        self._states = None

    def _ensure_states(self, shape):
        if self._states is None:
            self._states = [
                model.init_counts_state(shape)
                for model in self._schedule.faults
            ]
        return self._states

    def _claim(self, counts: np.ndarray, rng, round_index: int):
        """One round of victim claiming: ``(frozen, rewrites, claimed)``.

        ``frozen`` holds the freeze models' victims per color (they keep
        their colors), ``rewrites`` the rewriting models' victim vectors
        (they re-enter via :meth:`FaultModel.counts_replacement`), and
        ``claimed`` their sum — the nodes excluded from the honest
        multinomial.
        """
        claimed = np.zeros_like(counts)
        frozen = np.zeros_like(counts)
        rewrites = []
        active = self._schedule.active(round_index)
        for model, state in zip(self._schedule.faults, self._ensure_states(counts.shape)):
            extended = model.counts_round(state, claimed, counts, active, rng)
            victims = extended - claimed
            claimed = extended
            if model.rewrites:
                if active and not model.is_trivial():
                    rewrites.append((model, state, victims))
            else:
                frozen = frozen + victims
        return frozen, rewrites, claimed

    def step_row(self, counts: np.ndarray, rng, round_index: int) -> np.ndarray:
        """One faulty round for a single ``(k,)`` count vector.

        The exact law ``c' = f + Mult(n − |claimed|, α(c)) + Σ rewrites``:
        α still comes from the *full* pre-round configuration (every
        victim's old color stayed visible on the board), only unclaimed
        nodes resample honestly, frozen victims carry over verbatim, and
        rewritten victims re-enter at their replacement colors.
        """
        frozen, rewrites, claimed = self._claim(counts, rng, round_index)
        mobile = int(counts.sum() - claimed.sum())
        alpha = self._function.probabilities(counts)
        out = frozen + multinomial_step(mobile, alpha, rng)
        for model, state, victims in rewrites:
            out = out + model.counts_replacement(state, victims, rng)
        return out

    def step_matrix(self, counts: np.ndarray, rng, round_index: int) -> np.ndarray:
        """One faulty round for an ``(R, k)`` counts matrix (master rng)."""
        frozen, rewrites, claimed = self._claim(counts, rng, round_index)
        mobile = counts.sum(axis=1) - claimed.sum(axis=1)
        alpha = self._function.probabilities_batch(counts)
        out = frozen + multinomial_step_batch(mobile, alpha, rng)
        for model, state, victims in rewrites:
            out = out + model.counts_replacement(state, victims, rng)
        return out

    def compact(self, keep: np.ndarray) -> None:
        """Drop retired replica rows from every stateful model."""
        if self._states is None:
            return
        for state in self._states:
            if state:
                for key, value in state.items():
                    state[key] = value[keep]
