"""The declarative ``faults`` vocabulary: dicts, TOML values, CLI strings.

One canonical value describes a whole fault environment::

    {"crash": 0.01, "recover": 0.1, "loss": 0.05, "byzantine": 0.02,
     "color": None, "start": 0, "stop": None}

* ``crash > 0, recover == 0`` → :class:`~repro.faults.CrashStop`
* ``crash > 0, recover > 0``  → :class:`~repro.faults.CrashRecovery`
* ``loss > 0``                → :class:`~repro.faults.MessageLoss`
* ``byzantine > 0``           → :class:`~repro.faults.Byzantine`
  (``color`` pins the hostile color; ``None`` = uniform-random lies)
* all rates zero              → no faults (compiles to ``None``)

``start``/``stop`` bound the shared injection window, exactly like the
adversary axis.  The encoders keep spec hashes honest: default-valued
keys are dropped on encode, refilled on decode, so the same environment
always serialises to the same TOML fragment.
"""

from __future__ import annotations

from .models import Byzantine, CrashRecovery, CrashStop, MessageLoss
from .schedule import FaultSchedule

__all__ = [
    "FAULT_KEYS",
    "build_fault_schedule",
    "canonical_fault_value",
    "encode_fault_value",
    "parse_fault_cli",
]

#: Canonical key order with default values.
FAULT_KEYS = (
    ("crash", 0.0),
    ("recover", 0.0),
    ("loss", 0.0),
    ("byzantine", 0.0),
    ("color", None),
    ("start", 0),
    ("stop", None),
)


def canonical_fault_value(value) -> "dict | None":
    """Normalise a declarative faults value to its canonical dict (or None).

    Accepts ``None``, the string ``"none"``, a CLI-grammar string
    (``"crash:p=0.01,recover=0.1"`` — see :func:`parse_fault_cli`), or a
    mapping with any subset of the canonical keys.
    """
    if value is None:
        return None
    if isinstance(value, str):
        text = value.strip().lower()
        if text in ("", "none", "off"):
            return None
        return parse_fault_cli(value)
    try:
        items = dict(value)
    except (TypeError, ValueError):
        raise TypeError(
            f"faults must be a mapping, a spec string or 'none', got {value!r}"
        ) from None
    known = {key for key, _default in FAULT_KEYS}
    unknown = set(items) - known
    if unknown:
        raise KeyError(
            f"unknown faults keys {sorted(unknown)}; known keys are "
            f"{sorted(known)}"
        )
    out = {}
    for key, default in FAULT_KEYS:
        raw = items.get(key, default)
        if key in ("crash", "recover", "loss", "byzantine"):
            raw = float(raw)
            if not 0.0 <= raw <= 1.0:
                raise ValueError(
                    f"faults.{key} must be a probability in [0, 1], got {raw!r}"
                )
        elif key == "color":
            if raw == "none":
                raw = None
            if raw is not None:
                if isinstance(raw, bool) or int(raw) != raw or int(raw) < 0:
                    raise ValueError(
                        f"faults.color must be a non-negative int, got {raw!r}"
                    )
                raw = int(raw)
        elif key == "start":
            raw = int(raw)
            if raw < 0:
                raise ValueError("faults.start must be non-negative")
        elif key == "stop" and raw is not None:
            raw = int(raw)
            if raw <= out["start"]:
                raise ValueError("faults.stop must exceed faults.start")
        out[key] = raw
    if out["recover"] > 0.0 and out["crash"] == 0.0:
        raise ValueError(
            "faults.recover is meaningless without a positive faults.crash"
        )
    if out["color"] is not None and out["byzantine"] == 0.0:
        raise ValueError(
            "faults.color is meaningless without a positive faults.byzantine"
        )
    return out


def encode_fault_value(value) -> "dict | str":
    """JSON/TOML-friendly form: drop defaults; ``None`` becomes ``"none"``."""
    if value is None:
        return "none"
    value = canonical_fault_value(value)
    if value is None or (
        value["crash"] == 0.0
        and value["loss"] == 0.0
        and value["byzantine"] == 0.0
    ):
        # All rates zero compiles to no schedule — same environment,
        # same encoding (window bounds without a rate are meaningless).
        return "none"
    return {
        key: value[key]
        for key, default in FAULT_KEYS
        if value[key] != default and value[key] is not None
    }


def build_fault_schedule(value) -> "FaultSchedule | None":
    """Compile a declarative faults value into a live :class:`FaultSchedule`."""
    value = canonical_fault_value(value)
    if value is None:
        return None
    models = []
    if value["crash"] > 0.0:
        if value["recover"] > 0.0:
            models.append(CrashRecovery(value["crash"], value["recover"]))
        else:
            models.append(CrashStop(value["crash"]))
    if value["loss"] > 0.0:
        models.append(MessageLoss(value["loss"]))
    if value["byzantine"] > 0.0:
        models.append(Byzantine(value["byzantine"], color=value["color"]))
    if not models:
        return None
    return FaultSchedule(tuple(models), start=value["start"], stop=value["stop"])


def parse_fault_cli(text: "str | None", loss: "float | None" = None) -> "dict | None":
    """Parse the CLI grammar ``kind:key=val,key=val`` (+ a ``--loss`` merge).

    ``kind`` is ``crash``, ``loss`` or ``byzantine``; ``p=`` aliases the
    kind's own rate, so ``--faults crash:p=0.01,recover=0.1 --loss 0.05``
    yields ``{"crash": 0.01, "recover": 0.1, "loss": 0.05}`` and
    ``--faults byzantine:p=0.02,color=0`` pins the hostile color.
    """
    items: dict = {}
    if text:
        kind, sep, rest = text.strip().partition(":")
        kind = kind.strip().lower()
        if kind in ("none", "off", ""):
            kind = None
        elif kind not in ("crash", "loss", "byzantine"):
            raise ValueError(
                f"unknown fault kind {kind!r}; expected 'crash', 'loss' "
                "or 'byzantine'"
            )
        if kind is not None:
            if not sep or not rest.strip():
                raise ValueError(
                    f"fault spec {text!r} needs parameters, e.g. "
                    f"'{kind}:p=0.01'"
                )
            for item in rest.split(","):
                key, eq, raw = item.partition("=")
                key = key.strip().lower()
                if not eq or not raw.strip():
                    raise ValueError(f"malformed fault parameter {item!r}")
                if key == "p":
                    key = kind
                if key in ("crash", "recover", "loss", "byzantine"):
                    items[key] = float(raw)
                elif key == "color":
                    items[key] = int(raw)
                elif key == "start":
                    items[key] = int(raw)
                elif key == "stop":
                    items[key] = int(raw)
                else:
                    raise ValueError(
                        f"unknown fault parameter {key!r} in {text!r}"
                    )
    if loss is not None:
        items["loss"] = float(loss)
    if not items:
        return None
    return canonical_fault_value(items)
