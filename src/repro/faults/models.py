"""Fault models: crash-stop, crash-recovery and message loss.

A :class:`FaultModel` perturbs *node activity* rather than node opinions
— the dual of the §5 adversary, which corrupts colors but never silences
nodes.  Each round the engine asks the active fault models which nodes
are **frozen**: a frozen node skips its honest update and keeps its
current color, but that color stays visible on the message board, so
other nodes still sample it and stopping conditions still count it.
This matches the classical fault taxonomy for population/gossip models:

* *crash-stop* — a node halts permanently and never updates again
  (its last opinion remains readable forever);
* *crash-recovery* — a crashed node may come back and resume the
  dynamics from its pre-crash opinion;
* *message loss* — a node's incoming samples for one round are dropped,
  so it keeps its opinion for that round only (transient omission).

Models expose two representation-specific hooks mirroring the engine's
two chain representations:

* the **agent** hook works on boolean masks over nodes — shape ``(n,)``
  in the sequential/per-replica engines, ``(R, n)`` in the batched
  ensemble; the same code serves both because every operation is
  elementwise;
* the **counts** hook works on per-color integer counts — shape ``(k,)``
  or ``(R, k)`` — drawing binomially from the not-yet-frozen pool per
  color, which is the exact projection of the per-node Bernoulli draws
  onto the count chain.

rng discipline (the bit-for-bit contract): a model consumes random
numbers on a *round-deterministic* schedule — draws happen for **all**
nodes (then get masked by eligibility) whenever the corresponding rate
is positive, never a data-dependent subset — so the stream position
after round *t* depends only on ``t`` and the schedule, not on which
nodes happened to fail.  A model whose rates are all zero is *trivial*
and is dropped from the schedule before the engines ever see it, which
is what keeps rate-0 fault runs bit-for-bit identical to fault-free
runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["FaultModel", "CrashStop", "CrashRecovery", "MessageLoss"]


def _check_rate(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


class FaultModel(ABC):
    """One source of node-level faults, applied round by round.

    Subclasses implement the agent-mask and count-level hooks; stateful
    models (the crash family) keep their per-node / per-color state in
    the dict returned by ``init_agent_state`` / ``init_counts_state`` so
    one model instance can serve many independent replicas at once.
    """

    #: Whether the model has an exact count-level projection.  All three
    #: built-in models do; a hypothetical topology-aware model would not.
    supports_counts = True

    @abstractmethod
    def is_trivial(self) -> bool:
        """True when the model can never freeze a node (all rates zero)."""

    # -- agent representation ---------------------------------------------

    def init_agent_state(self, shape) -> "dict | None":
        """Fresh mutable state for a mask of ``shape`` nodes (or None)."""
        return None

    @abstractmethod
    def agent_round(self, state, frozen, active, rng):
        """Extend the boolean ``frozen`` mask with this model's victims.

        ``frozen`` accumulates over the models of one schedule in order;
        eligibility is always drawn from the complement, so the models'
        victim pools stay disjoint.  ``active`` is the schedule window
        gate for injection; recovery (if any) runs regardless.
        """

    # -- counts representation --------------------------------------------

    def init_counts_state(self, shape) -> "dict | None":
        """Fresh mutable state for per-color counts of ``shape``."""
        return None

    @abstractmethod
    def counts_round(self, state, frozen, counts, active, rng):
        """Extend the per-color ``frozen`` counts with this model's victims.

        Exact projection of :meth:`agent_round`: every per-node Bernoulli
        over an eligible pool becomes one binomial per color.
        """


class CrashStop(FaultModel):
    """Permanent crashes: each active round, every live node halts w.p. ``rate``.

    A crashed node keeps its opinion visible forever but never updates
    again — the fail-stop model of the consensus literature.
    """

    def __init__(self, rate: float):
        self.rate = _check_rate("crash rate", rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rate={self.rate})"

    def is_trivial(self) -> bool:
        return self.rate == 0.0

    def init_agent_state(self, shape):
        return {"crashed": np.zeros(shape, dtype=bool)}

    def agent_round(self, state, frozen, active, rng):
        crashed = state["crashed"]
        if active and self.rate > 0.0:
            draw = rng.random(crashed.shape)
            crashed |= (draw < self.rate) & ~frozen & ~crashed
        return frozen | crashed

    def init_counts_state(self, shape):
        return {"crashed": np.zeros(shape, dtype=np.int64)}

    def counts_round(self, state, frozen, counts, active, rng):
        crashed = state["crashed"]
        if active and self.rate > 0.0:
            eligible = counts - frozen - crashed
            crashed += rng.binomial(eligible, self.rate)
        return frozen + crashed


class CrashRecovery(FaultModel):
    """Crashes with repair: halt w.p. ``rate``, return w.p. ``recovery``.

    Recovery draws happen *every* round once a node is down — the
    schedule window gates fault *injection* only, so nodes crashed
    inside the window keep recovering after it closes.  A recovered node
    resumes the dynamics from its pre-crash opinion (crash-recovery with
    stable storage).
    """

    def __init__(self, rate: float, recovery: float):
        self.rate = _check_rate("crash rate", rate)
        self.recovery = _check_rate("recovery rate", recovery)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(rate={self.rate}, recovery={self.recovery})"
        )

    def is_trivial(self) -> bool:
        return self.rate == 0.0

    def init_agent_state(self, shape):
        return {"crashed": np.zeros(shape, dtype=bool)}

    def agent_round(self, state, frozen, active, rng):
        crashed = state["crashed"]
        if self.recovery > 0.0:
            draw = rng.random(crashed.shape)
            crashed &= ~(draw < self.recovery)
        if active and self.rate > 0.0:
            draw = rng.random(crashed.shape)
            crashed |= (draw < self.rate) & ~frozen & ~crashed
        return frozen | crashed

    def init_counts_state(self, shape):
        return {"crashed": np.zeros(shape, dtype=np.int64)}

    def counts_round(self, state, frozen, counts, active, rng):
        crashed = state["crashed"]
        if self.recovery > 0.0:
            crashed -= rng.binomial(crashed, self.recovery)
        if active and self.rate > 0.0:
            eligible = counts - frozen - crashed
            crashed += rng.binomial(eligible, self.rate)
        return frozen + crashed


class MessageLoss(FaultModel):
    """Transient omission: each active round a node's samples drop w.p. ``rate``.

    Stateless — a victim keeps its opinion for exactly that round (it
    received nothing to update from) and is a normal node again next
    round.  This is per-round iid message loss on a node's whole inbox,
    the standard lossy-channel abstraction for uniform-gossip models.
    """

    def __init__(self, rate: float):
        self.rate = _check_rate("loss rate", rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rate={self.rate})"

    def is_trivial(self) -> bool:
        return self.rate == 0.0

    def agent_round(self, state, frozen, active, rng):
        if active and self.rate > 0.0:
            draw = rng.random(frozen.shape)
            return frozen | ((draw < self.rate) & ~frozen)
        return frozen

    def counts_round(self, state, frozen, counts, active, rng):
        if active and self.rate > 0.0:
            return frozen + rng.binomial(counts - frozen, self.rate)
        return frozen
