"""Fault models: crash-stop, crash-recovery, message loss and Byzantine.

A :class:`FaultModel` perturbs *node activity* rather than node opinions
— the dual of the §5 adversary, which corrupts colors but never silences
nodes.  Each round the engine asks the active fault models which nodes
they claim: a **frozen** node skips its honest update and keeps its
current color, but that color stays visible on the message board, so
other nodes still sample it and stopping conditions still count it; a
**rewritten** node (the Byzantine model, ``rewrites = True``) instead
has its post-update color replaced by an adversarially chosen one.
This matches the classical fault taxonomy for population/gossip models:

* *crash-stop* — a node halts permanently and never updates again
  (its last opinion remains readable forever);
* *crash-recovery* — a crashed node may come back and resume the
  dynamics from its pre-crash opinion;
* *message loss* — a node's incoming samples for one round are dropped,
  so it keeps its opinion for that round only (transient omission);
* *Byzantine* — a node ignores the protocol for one round and announces
  a color of the adversary's choosing (uniform-random, or a fixed
  hostile color), while its *pre-round* color stays visible on the
  board during that round — corruption, not silence.

Models expose two representation-specific hooks mirroring the engine's
two chain representations:

* the **agent** hook works on boolean masks over nodes — shape ``(n,)``
  in the sequential/per-replica engines, ``(R, n)`` in the batched
  ensemble; the same code serves both because every operation is
  elementwise;
* the **counts** hook works on per-color integer counts — shape ``(k,)``
  or ``(R, k)`` — drawing binomially from the not-yet-frozen pool per
  color, which is the exact projection of the per-node Bernoulli draws
  onto the count chain.

rng discipline (the bit-for-bit contract): a model consumes random
numbers on a *round-deterministic* schedule — draws happen for **all**
nodes (then get masked by eligibility) whenever the corresponding rate
is positive, never a data-dependent subset — so the stream position
after round *t* depends only on ``t`` and the schedule, not on which
nodes happened to fail.  A model whose rates are all zero is *trivial*
and is dropped from the schedule before the engines ever see it, which
is what keeps rate-0 fault runs bit-for-bit identical to fault-free
runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.ac_process import multinomial_step, multinomial_step_batch

__all__ = ["FaultModel", "CrashStop", "CrashRecovery", "MessageLoss", "Byzantine"]


def _check_rate(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


class FaultModel(ABC):
    """One source of node-level faults, applied round by round.

    Subclasses implement the agent-mask and count-level hooks; stateful
    models (the crash family) keep their per-node / per-color state in
    the dict returned by ``init_agent_state`` / ``init_counts_state`` so
    one model instance can serve many independent replicas at once.
    """

    #: Whether the model has an exact count-level projection.  All the
    #: built-in models do; a hypothetical topology-aware model would not.
    supports_counts = True

    #: Whether this model's victims are *rewritten* (post-update color
    #: replaced via the ``*_replacement`` hooks) rather than frozen
    #: (reverted to their pre-round color).  Claiming stays shared — the
    #: victim draw joins the same accumulated mask either way, keeping
    #: victim pools disjoint within a round.
    rewrites = False

    @abstractmethod
    def is_trivial(self) -> bool:
        """True when the model can never freeze a node (all rates zero)."""

    # -- agent representation ---------------------------------------------

    def init_agent_state(self, shape) -> "dict | None":
        """Fresh mutable state for a mask of ``shape`` nodes (or None)."""
        return None

    @abstractmethod
    def agent_round(self, state, frozen, active, rng):
        """Extend the boolean ``frozen`` mask with this model's victims.

        ``frozen`` accumulates over the models of one schedule in order;
        eligibility is always drawn from the complement, so the models'
        victim pools stay disjoint.  ``active`` is the schedule window
        gate for injection; recovery (if any) runs regardless.
        """

    # -- counts representation --------------------------------------------

    def init_counts_state(self, shape) -> "dict | None":
        """Fresh mutable state for per-color counts of ``shape``."""
        return None

    @abstractmethod
    def counts_round(self, state, frozen, counts, active, rng):
        """Extend the per-color ``frozen`` counts with this model's victims.

        Exact projection of :meth:`agent_round`: every per-node Bernoulli
        over an eligible pool becomes one binomial per color.
        """

    # -- replacement hooks (rewrites = True models only) ------------------

    def agent_replacement(self, state, victims, previous, rng, num_slots):
        """Replacement colors for this round's victims (full shape).

        Called once per round whenever the model is active and
        non-trivial — regardless of how many victims the round drew — so
        rng consumption stays round-deterministic.  Must return an array
        of ``previous``'s shape *and dtype* (only the ``victims``
        positions are used).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not rewrite colors"
        )

    def counts_replacement(self, state, victims, rng):
        """Per-color counts the rewritten nodes land on.

        ``victims`` holds this model's claimed nodes per color (``(k,)``
        or ``(R, k)``); the return value must conserve them:
        ``out.sum(axis=-1) == victims.sum(axis=-1)``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not rewrite colors"
        )


class CrashStop(FaultModel):
    """Permanent crashes: each active round, every live node halts w.p. ``rate``.

    A crashed node keeps its opinion visible forever but never updates
    again — the fail-stop model of the consensus literature.
    """

    def __init__(self, rate: float):
        self.rate = _check_rate("crash rate", rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rate={self.rate})"

    def is_trivial(self) -> bool:
        return self.rate == 0.0

    def init_agent_state(self, shape):
        return {"crashed": np.zeros(shape, dtype=bool)}

    def agent_round(self, state, frozen, active, rng):
        crashed = state["crashed"]
        if active and self.rate > 0.0:
            draw = rng.random(crashed.shape)
            crashed |= (draw < self.rate) & ~frozen & ~crashed
        return frozen | crashed

    def init_counts_state(self, shape):
        return {"crashed": np.zeros(shape, dtype=np.int64)}

    def counts_round(self, state, frozen, counts, active, rng):
        crashed = state["crashed"]
        if active and self.rate > 0.0:
            eligible = counts - frozen - crashed
            crashed += rng.binomial(eligible, self.rate)
        return frozen + crashed


class CrashRecovery(FaultModel):
    """Crashes with repair: halt w.p. ``rate``, return w.p. ``recovery``.

    Recovery draws happen *every* round once a node is down — the
    schedule window gates fault *injection* only, so nodes crashed
    inside the window keep recovering after it closes.  A recovered node
    resumes the dynamics from its pre-crash opinion (crash-recovery with
    stable storage).
    """

    def __init__(self, rate: float, recovery: float):
        self.rate = _check_rate("crash rate", rate)
        self.recovery = _check_rate("recovery rate", recovery)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(rate={self.rate}, recovery={self.recovery})"
        )

    def is_trivial(self) -> bool:
        return self.rate == 0.0

    def init_agent_state(self, shape):
        return {"crashed": np.zeros(shape, dtype=bool)}

    def agent_round(self, state, frozen, active, rng):
        crashed = state["crashed"]
        if self.recovery > 0.0:
            draw = rng.random(crashed.shape)
            crashed &= ~(draw < self.recovery)
        if active and self.rate > 0.0:
            draw = rng.random(crashed.shape)
            crashed |= (draw < self.rate) & ~frozen & ~crashed
        return frozen | crashed

    def init_counts_state(self, shape):
        return {"crashed": np.zeros(shape, dtype=np.int64)}

    def counts_round(self, state, frozen, counts, active, rng):
        crashed = state["crashed"]
        if self.recovery > 0.0:
            crashed -= rng.binomial(crashed, self.recovery)
        if active and self.rate > 0.0:
            eligible = counts - frozen - crashed
            crashed += rng.binomial(eligible, self.rate)
        return frozen + crashed


class MessageLoss(FaultModel):
    """Transient omission: each active round a node's samples drop w.p. ``rate``.

    Stateless — a victim keeps its opinion for exactly that round (it
    received nothing to update from) and is a normal node again next
    round.  This is per-round iid message loss on a node's whole inbox,
    the standard lossy-channel abstraction for uniform-gossip models.
    """

    def __init__(self, rate: float):
        self.rate = _check_rate("loss rate", rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rate={self.rate})"

    def is_trivial(self) -> bool:
        return self.rate == 0.0

    def agent_round(self, state, frozen, active, rng):
        if active and self.rate > 0.0:
            draw = rng.random(frozen.shape)
            return frozen | ((draw < self.rate) & ~frozen)
        return frozen

    def counts_round(self, state, frozen, counts, active, rng):
        if active and self.rate > 0.0:
            return frozen + rng.binomial(counts - frozen, self.rate)
        return frozen


class Byzantine(FaultModel):
    """Hostile nodes: each active round a node goes rogue w.p. ``rate``.

    A victim skips the protocol for that round and announces an
    adversarially chosen color instead — uniform over the color space by
    default, or the fixed hostile ``color`` when given (the classical
    "all traitors push one value" strategy).  Its *pre-round* color stays
    visible on the message board during the round (other nodes may still
    sample it), exactly like the frozen models; the lie lands in the
    post-round configuration.  Stateless: a node is Byzantine per round,
    not permanently, so ``rate`` is the per-round fraction of traitors in
    expectation — the paper's adversary strength knob recast as a fault.

    Counts projection: victims are drawn binomially per color from the
    unclaimed pool (same law as :class:`MessageLoss`), honest mobile
    nodes resample via the usual multinomial, and the victims re-enter
    the configuration at the hostile color (fixed) or via a uniform
    multinomial (the exact projection of per-node uniform choices).
    """

    rewrites = True

    def __init__(self, rate: float, color: "int | None" = None):
        self.rate = _check_rate("byzantine rate", rate)
        if color is not None:
            if isinstance(color, bool) or int(color) != color or int(color) < 0:
                raise ValueError(
                    f"byzantine color must be a non-negative int, got {color!r}"
                )
            color = int(color)
        self.color = color

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.color is None:
            return f"{type(self).__name__}(rate={self.rate})"
        return f"{type(self).__name__}(rate={self.rate}, color={self.color})"

    def is_trivial(self) -> bool:
        return self.rate == 0.0

    def agent_round(self, state, frozen, active, rng):
        if active and self.rate > 0.0:
            draw = rng.random(frozen.shape)
            return frozen | ((draw < self.rate) & ~frozen)
        return frozen

    def counts_round(self, state, frozen, counts, active, rng):
        if active and self.rate > 0.0:
            return frozen + rng.binomial(counts - frozen, self.rate)
        return frozen

    def _check_color(self, num_slots: int) -> None:
        if self.color is not None and self.color >= num_slots:
            raise ValueError(
                f"byzantine color {self.color} is outside the color space "
                f"[0, {num_slots})"
            )

    def agent_replacement(self, state, victims, previous, rng, num_slots):
        self._check_color(num_slots)
        if self.color is not None:
            return np.full(previous.shape, self.color, dtype=previous.dtype)
        # Draw in the generator's native int64 then narrow: the stream
        # consumption (and the values) are then identical whether the
        # color matrix is int64 (sequential) or int32 (ensemble).
        draw = rng.integers(0, num_slots, size=previous.shape)
        return draw.astype(previous.dtype, copy=False)

    def counts_replacement(self, state, victims, rng):
        num_slots = victims.shape[-1]
        self._check_color(num_slots)
        if self.color is not None:
            out = np.zeros_like(victims)
            out[..., self.color] = victims.sum(axis=-1)
            return out
        alpha = np.full(num_slots, 1.0 / num_slots)
        if victims.ndim == 1:
            return multinomial_step(int(victims.sum()), alpha, rng)
        return multinomial_step_batch(
            victims.sum(axis=-1),
            np.broadcast_to(alpha, victims.shape),
            rng,
        )
