"""Fault injection: crash / recovery / loss / Byzantine node faults.

The robustness sibling of :mod:`repro.adversary`: where the §5 adversary
corrupts *opinions*, a fault model silences *nodes* — permanently
(:class:`CrashStop`), transiently with repair (:class:`CrashRecovery`),
or for a single round of dropped samples (:class:`MessageLoss`) — or, in
the :class:`Byzantine` case, has them lie outright (per-round rewritten
colors, uniform or a fixed hostile value).  Models
compose in a :class:`FaultSchedule` with an activation window and ride
every engine through the ``faults=`` axis of
:class:`~repro.engine.plan.SimulationPlan`; the declarative study layer
speaks the same vocabulary via :func:`build_fault_schedule` and friends.
"""

from .declarative import (
    FAULT_KEYS,
    build_fault_schedule,
    canonical_fault_value,
    encode_fault_value,
    parse_fault_cli,
)
from .models import Byzantine, CrashRecovery, CrashStop, FaultModel, MessageLoss
from .schedule import FaultSchedule, as_fault_schedule

__all__ = [
    "FAULT_KEYS",
    "Byzantine",
    "CrashRecovery",
    "CrashStop",
    "FaultModel",
    "FaultSchedule",
    "MessageLoss",
    "as_fault_schedule",
    "build_fault_schedule",
    "canonical_fault_value",
    "encode_fault_value",
    "parse_fault_cli",
]
