"""A thin stdlib client for the study daemon.

:class:`ServeClient` wraps ``urllib.request`` around the wire protocol
of ``protocol.py``: every call sends/receives protocol-stamped JSON,
raises :class:`ServeError` with the server's own message on non-2xx
responses, and hands back plain dicts (the job views and event lines
exactly as documented there).  ``results_store`` rebuilds a full
:class:`~repro.study.StudyStore` from the ``/results`` payload, so a
client-side ``results_equal`` against a local run needs no extra glue.

The CLI's ``repro study submit / status / watch / results / cancel``
verbs are one call each on this class.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Iterator

from ..study.spec import StudySpec
from ..study.store import StudyStore
from .protocol import PROTOCOL_VERSION, check_protocol, submit_request

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A request the daemon rejected (carries its error message)."""

    def __init__(self, message: str, status: "int | None" = None):
        super().__init__(message)
        self.status = status


class ServeClient:
    """One daemon endpoint, e.g. ``ServeClient("http://127.0.0.1:8321")``."""

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _open(self, path: str, payload: "dict | None" = None, *, timeout=None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers
        )
        try:
            return urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            )
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
                message = body.get("error", str(exc))
            except (UnicodeDecodeError, json.JSONDecodeError, AttributeError):
                message = str(exc)
            raise ServeError(message, status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach daemon at {self.base_url}: {exc.reason}"
            ) from None

    def _call(self, path: str, payload: "dict | None" = None) -> dict:
        with self._open(path, payload) as response:
            return check_protocol(json.loads(response.read().decode("utf-8")))

    # -- the verbs ---------------------------------------------------------

    def submit(self, spec) -> dict:
        """Submit a :class:`StudySpec` (or its dict form); return the view."""
        if isinstance(spec, StudySpec):
            spec = spec.to_dict()
        return self._call("/jobs", submit_request(spec))

    def jobs(self) -> "list[dict]":
        """All job views, submission order."""
        return self._call("/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        """One job's view: state plus per-cell status counts."""
        return self._call(f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued/running job; returns the resulting view."""
        return self._call(f"/jobs/{job_id}/cancel", {"protocol": PROTOCOL_VERSION})

    def results(self, job_id: str) -> dict:
        """The raw ``/results`` payload (``"store"`` is the dict form)."""
        return self._call(f"/jobs/{job_id}/results")

    def results_store(self, job_id: str) -> StudyStore:
        """The job's results as a live :class:`StudyStore`."""
        return StudyStore.from_dict(self.results(job_id)["store"])

    def events(self, job_id: str, *, pings: bool = False) -> "Iterator[dict]":
        """Stream a job's ndjson events until its terminal ``done`` line.

        Yields each event dict as it arrives (``ping`` heartbeats are
        dropped unless ``pings=True``).  The generator ends when the
        server closes the stream; closing the generator closes the
        connection.
        """
        response = self._open(f"/jobs/{job_id}/events", timeout=max(self.timeout, 60.0))
        try:
            for line in response:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                if event.get("event") == "ping" and not pings:
                    continue
                yield event
        finally:
            response.close()

    def wait(self, job_id: str, *, progress=None) -> dict:
        """Follow the event stream to completion; return the final view.

        ``progress`` (if given) receives each ``record`` event.  If the
        stream ends without a ``done`` line (daemon shut down mid-run),
        the last known status is fetched and returned instead.
        """
        final = None
        for event in self.events(job_id):
            if event.get("event") == "record" and progress is not None:
                progress(event)
            elif event.get("event") == "done":
                final = event["job"]
        return final if final is not None else self.status(job_id)
