"""The daemon's HTTP surface: stdlib ``http.server`` over a JobManager.

Endpoints (all bodies protocol-stamped JSON, see ``protocol.py``):

``POST /jobs``
    Submit a spec (``{"protocol", "spec": StudySpec.to_dict()}``).
    Validates and compiles the whole grid eagerly; 400 on a bad spec,
    200 with the job view otherwise (``"attached": true`` when the spec
    hash matched an existing queued/running/done job).
``GET /jobs``
    All jobs, submission order.
``GET /jobs/<id>``
    One job's view: state plus per-cell status counts.
``GET /jobs/<id>/events``
    Newline-delimited JSON progress stream (see ``protocol.py``).  The
    stream *tails the job store's crash-safe journal* through
    :class:`~repro.study.store.JournalReader`, so attaching mid-run
    replays the valid prefix first — a watcher reconnecting after a
    network blip sees every record exactly once.
``GET /jobs/<id>/results``
    The checkpointed columnar store (``StudyStore.to_dict`` under
    ``"store"``); 409 while nothing is checkpointed yet.
``POST /jobs/<id>/cancel``
    Cancel a queued or running job.

The server speaks HTTP/1.0 with ``Connection: close`` — the event
stream is just bytes until EOF, no chunked framing to implement on
either side.  ``ThreadingHTTPServer`` gives each watcher its own
thread; every mutation funnels through the manager's single lock and
single executor, so concurrency stays at the edges.
"""

from __future__ import annotations

import json
import re
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .. import __version__
from ..study.store import JournalReader
from .jobs import JobManager
from .protocol import (
    TERMINAL_STATES,
    ProtocolError,
    done_event,
    envelope,
    error_body,
    hello_event,
    parse_submit_request,
    ping_event,
    record_event,
)

__all__ = ["StudyServer", "serve"]

_JOB_ROUTE = re.compile(r"^/jobs/([0-9a-f]{16})(/events|/results|/cancel)?$")

#: Seconds between journal polls while streaming events.
_POLL_S = 0.1
#: Idle seconds between heartbeat pings on the event stream.
_PING_S = 5.0


class StudyServer(ThreadingHTTPServer):
    """One listening socket plus the shared :class:`JobManager`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, manager: JobManager, *, verbose: bool = False):
        super().__init__(address, _Handler)
        self.manager = manager
        self.verbose = verbose


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.0"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"body is not valid JSON: {exc}") from exc

    # -- routing -----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path == "/jobs":
            return self._submit()
        match = _JOB_ROUTE.match(self.path)
        if match and match.group(2) == "/cancel":
            return self._cancel(match.group(1))
        self._send_json(404, error_body(f"no such endpoint: POST {self.path}"))

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path == "/jobs":
            return self._send_json(200, envelope({"jobs": self.server.manager.views()}))
        match = _JOB_ROUTE.match(self.path)
        if match is None:
            return self._send_json(404, error_body(f"no such endpoint: GET {self.path}"))
        job_id, tail = match.group(1), match.group(2)
        try:
            if tail is None:
                return self._send_json(200, self.server.manager.view(job_id))
            if tail == "/events":
                return self._events(job_id)
            if tail == "/results":
                return self._results(job_id)
        except KeyError:
            return self._send_json(404, error_body(f"unknown job {job_id}"))
        self._send_json(404, error_body(f"no such endpoint: GET {self.path}"))

    # -- endpoints ---------------------------------------------------------

    def _submit(self) -> None:
        try:
            spec_payload = parse_submit_request(self._read_body())
            view = self.server.manager.submit(spec_payload)
        except (ProtocolError, KeyError, TypeError, ValueError) as exc:
            return self._send_json(400, error_body(f"invalid submission: {exc}"))
        self._send_json(200, view)

    def _cancel(self, job_id: str) -> None:
        try:
            view = self.server.manager.cancel(job_id)
        except KeyError:
            return self._send_json(404, error_body(f"unknown job {job_id}"))
        self._send_json(200, view)

    def _results(self, job_id: str) -> None:
        manager = self.server.manager
        view = manager.view(job_id)  # KeyError → caller's 404
        try:
            store = manager.load_store(job_id)
        except FileNotFoundError:
            return self._send_json(
                409,
                error_body(
                    f"job {job_id} has no checkpointed results yet "
                    f"(state: {view['state']})"
                ),
            )
        self._send_json(
            200,
            envelope({"id": job_id, "state": view["state"], "store": store.to_dict()}),
        )

    def _events(self, job_id: str) -> None:
        """Stream ndjson progress until the job reaches a terminal state.

        The source of truth is the job store's sidecar journal: the
        reader replays its valid prefix on attach (mid-run watchers see
        history first) and then follows appends.  When the job ends the
        journal has been compacted away, so the final catch-up reads
        the columnar store for any record the tail never surfaced.
        """
        manager = self.server.manager
        view = manager.view(job_id)  # KeyError → caller's 404
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        reader = JournalReader(manager.journal_path(job_id))
        sent: "set[str]" = set()
        try:
            self._emit(hello_event(view))
            last_line = time.monotonic()
            while True:
                wrote = False
                for record in reader.poll():
                    if record.cell_id in sent:
                        continue
                    sent.add(record.cell_id)
                    self._emit(record_event(record))
                    wrote = True
                state = manager.state(job_id)
                if state in TERMINAL_STATES:
                    # Drain what the tail missed: compaction folds the
                    # journal into the columnar file at run end.
                    for record in self._final_records(job_id):
                        if record.cell_id not in sent:
                            sent.add(record.cell_id)
                            self._emit(record_event(record))
                    self._emit(done_event(manager.view(job_id)))
                    return
                now = time.monotonic()
                if wrote:
                    last_line = now
                elif now - last_line >= _PING_S:
                    self._emit(ping_event())
                    last_line = now
                time.sleep(_POLL_S)
        except (BrokenPipeError, ConnectionResetError):
            return  # the watcher went away; nothing to clean up

    def _final_records(self, job_id: str):
        try:
            return self.server.manager.load_store(job_id).records()
        except (OSError, KeyError, ValueError):
            return []

    def _emit(self, event: dict) -> None:
        self.wfile.write((json.dumps(event) + "\n").encode("utf-8"))
        self.wfile.flush()


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    state_dir: str = "repro-serve",
    *,
    workers: "int | None" = None,
    max_inflight: "int | None" = None,
    cache=True,
    verbose: bool = False,
    ready=None,
) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns an exit code.

    ``port=0`` binds an ephemeral port; the actual address is announced
    on stdout (``listening on http://host:port``) so wrappers — the
    smoke script, tests — can parse it.  ``ready`` is an optional
    callback receiving the :class:`StudyServer` once it is listening
    (for in-process embedding).  Shutdown is graceful: the running
    job's cell in flight is checkpointed and the job re-enqueues on the
    next daemon started on the same ``state_dir``.
    """
    manager = JobManager(
        state_dir,
        workers=workers,
        max_inflight=max_inflight,
        cache=cache,
    )
    server = StudyServer((host, port), manager, verbose=verbose)
    manager.start()

    def _stop(_signum, _frame):
        # serve_forever must not be shut down from the handler's frame
        # (it would deadlock on its own poll loop); hand it to a thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    installed = {}
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                installed[signum] = signal.signal(signum, _stop)
            except (ValueError, OSError):  # pragma: no cover
                pass
    actual_host, actual_port = server.server_address[:2]
    print(f"listening on http://{actual_host}:{actual_port}", flush=True)
    print(f"state dir: {state_dir}", flush=True)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        for signum, previous in installed.items():
            signal.signal(signum, previous)
        server.server_close()
        manager.close()
    return 0
