"""The daemon's job queue: a single-writer executor over ``run_study``.

:class:`JobManager` owns everything stateful about the service:

* the job table (id → :class:`Job`), keyed by ``spec_hash`` so
  submission is idempotent and dedup is content-addressed;
* a FIFO queue drained by ONE executor thread — the store layer's
  single-writer discipline, lifted to the service: however many HTTP
  threads accept submissions, exactly one ``run_study`` runs at a time
  (cells still parallelise *inside* it via the ``[parallel]`` table or
  the daemon's ``--workers``);
* the state directory::

      <state_dir>/jobs.jsonl             # the job journal (CRC lines)
      <state_dir>/stores/<id>.store.json # one study store per job
      <state_dir>/cache/                 # shared result cache (default)

The job journal reuses the store journal's CRC-guarded line format
(``{"crc", "data"}`` envelopes, fsync per append) under its own header
kind, so a killed daemon restarted on the same state dir replays the
valid prefix, truncates any torn tail, and re-enqueues every job that
was ``queued`` / ``running`` / ``interrupted`` — in original submission
order.  The *result* durability is the store journal's: ``run_study``
with ``resume=True`` completes each re-enqueued job bit-for-bit.

Graceful shutdown sets the running job's stop event; ``run_study``
checkpoints the cell in flight, the job lands as ``interrupted``, and
the next daemon on this state dir picks it back up.
"""

from __future__ import annotations

import os
import queue
import threading
from dataclasses import dataclass, field
from typing import Mapping

from ..study import StudySpec, spec_hash, validate_study
from ..study.runner import run_study
from ..study.store import (
    _journal_line,
    _parse_journal_line,
    journal_path,
    load_study_store,
)
from .protocol import ACTIVE_STATES, JOB_STATES, PROTOCOL_VERSION, envelope

__all__ = ["Job", "JobManager"]

_JOBS_KIND = "repro-serve-jobs"

_ZERO_COUNTS = {"ok": 0, "failed": 0, "timeout": 0, "degraded": 0, "cached": 0}


@dataclass
class Job:
    """One submitted spec and its current service-side state."""

    id: str
    spec: StudySpec = field(repr=False)
    num_cells: int
    state: str = "queued"
    error: "str | None" = None
    #: Per-cell status tallies (``degraded``/``cached`` overlap ``ok``).
    counts: dict = field(default_factory=lambda: dict(_ZERO_COUNTS))
    #: Set to ask the executor (or ``run_study``) to stop this job.
    stop: threading.Event = field(default_factory=threading.Event, repr=False)
    cancelled: bool = False

    def view(self) -> dict:
        """The protocol-stamped status payload for this job."""
        return envelope(
            {
                "id": self.id,
                "name": self.spec.name,
                "state": self.state,
                "num_cells": int(self.num_cells),
                "counts": dict(self.counts),
                "error": self.error,
            }
        )


class JobManager:
    """Durable FIFO of study jobs with a single executor thread."""

    def __init__(
        self,
        state_dir: str,
        *,
        workers: "int | None" = None,
        max_inflight: "int | None" = None,
        cache=True,
        deadline_s: "float | None" = None,
        max_attempts: "int | None" = None,
    ):
        self.state_dir = state_dir
        self._stores_dir = os.path.join(state_dir, "stores")
        os.makedirs(self._stores_dir, exist_ok=True)
        self._journal_file = os.path.join(state_dir, "jobs.jsonl")
        # ``cache=True`` keeps the cache *inside* the state dir: a
        # resubmitted finished spec replays at 100% hits without ever
        # touching (or polluting) the user's shared ~/.cache/repro.
        if cache is True:
            cache = os.path.join(state_dir, "cache")
        self._cache = cache
        self._workers = workers
        self._max_inflight = max_inflight
        self._deadline_s = deadline_s
        self._max_attempts = max_attempts

        self._lock = threading.RLock()
        self._jobs: "dict[str, Job]" = {}
        self._order: "list[str]" = []  # submission order, for replay
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._shutdown = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._handle = None

        self._replay()
        self._handle = open(self._journal_file, "ab")
        if not self._jobs and self._handle.tell() == 0:
            self._append({"kind": _JOBS_KIND, "protocol": PROTOCOL_VERSION})
        for job_id in self._order:
            job = self._jobs[job_id]
            if job.state in ("queued", "running", "interrupted"):
                # A killed daemon's in-flight work: re-enqueue with a
                # fresh journaled 'queued' so the file replays the same
                # way next time.
                self._set_state(job, "queued")
                job.counts = self._counts_from_disk(job_id)
                self._queue.put(job_id)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the executor thread (idempotent)."""
        with self._lock:
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._drain, name="repro-serve-executor", daemon=True
                )
                self._thread.start()

    def close(self) -> None:
        """Graceful shutdown: checkpoint the running job, then stop.

        The running job's stop event makes ``run_study`` finish the cell
        in flight, journal it, and return with ``interrupted=True``; the
        job lands as ``interrupted`` and a restarted daemon resumes it.
        """
        self._shutdown.set()
        with self._lock:
            for job in self._jobs.values():
                if job.state == "running":
                    job.stop.set()
            thread = self._thread
        if thread is not None:
            thread.join()
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- the journal -------------------------------------------------------

    def _append(self, data: dict) -> None:
        self._handle.write(_journal_line(data))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _replay(self) -> None:
        """Rebuild the job table from the journal's valid prefix."""
        try:
            with open(self._journal_file, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return
        header = None
        valid_bytes = 0
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                break
            data = _parse_journal_line(raw[offset : newline + 1])
            if data is None:
                break
            if header is None:
                if not isinstance(data, dict) or data.get("kind") != _JOBS_KIND:
                    break
                header = data
            else:
                self._apply(data)
            offset = newline + 1
            valid_bytes = offset
        if valid_bytes < len(raw):
            # Torn tail (the daemon died mid-append): truncate so the
            # next append starts on a clean line boundary.
            with open(self._journal_file, "r+b") as handle:
                handle.truncate(valid_bytes)

    def _apply(self, data: dict) -> None:
        """One replayed journal event → the in-memory job table."""
        try:
            event = data["event"]
            if event == "submitted":
                spec = StudySpec.from_dict(data["spec"])
                job_id = data["id"]
                if job_id not in self._jobs:
                    self._jobs[job_id] = Job(
                        id=job_id, spec=spec, num_cells=int(data["num_cells"])
                    )
                    self._order.append(job_id)
            elif event == "state":
                job = self._jobs.get(data["id"])
                if job is not None and data["state"] in JOB_STATES:
                    job.state = data["state"]
                    job.error = data.get("error")
        except (KeyError, TypeError, ValueError):
            # A malformed-but-CRC-valid line means a newer (or buggy)
            # writer; skipping it degrades to recomputing that job.
            return

    def _set_state(self, job: Job, state: str, error: "str | None" = None) -> None:
        job.state = state
        job.error = error
        self._append({"event": "state", "id": job.id, "state": state, "error": error})

    # -- paths and derived views ------------------------------------------

    def store_path(self, job_id: str) -> str:
        """The job's study-store path inside the state dir."""
        return os.path.join(self._stores_dir, f"{job_id}.store.json")

    def _counts_from_disk(self, job_id: str) -> dict:
        """Recount per-cell statuses from the checkpointed store."""
        counts = dict(_ZERO_COUNTS)
        try:
            store = load_study_store(self.store_path(job_id))
        except (OSError, KeyError, ValueError):
            return counts
        for record in store.records():
            self._tally(counts, record)
        return counts

    @staticmethod
    def _tally(counts: dict, record) -> None:
        counts[record.status] = counts.get(record.status, 0) + 1
        if record.cache_hit:
            counts["cached"] += 1
        if record.degraded_from:
            counts["degraded"] += 1

    # -- the client-facing surface ----------------------------------------

    def submit(self, spec_payload: Mapping) -> dict:
        """Validate, dedup and enqueue one spec; return the job view.

        Raises the compiler's ``ValueError``/``KeyError``/``TypeError``
        unchanged for invalid specs — the server maps those to 400.
        """
        spec = StudySpec.from_dict(spec_payload)
        summary = validate_study(spec)  # eager whole-grid validation
        job_id = summary["spec_hash"]
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and job.state in ACTIVE_STATES:
                view = job.view()
                view["attached"] = True
                return view
            if job is None:
                job = Job(id=job_id, spec=spec, num_cells=summary["num_cells"])
                self._jobs[job_id] = job
                self._order.append(job_id)
                self._append(
                    {
                        "event": "submitted",
                        "id": job_id,
                        "spec": spec.to_dict(),
                        "num_cells": summary["num_cells"],
                    }
                )
                self._set_state(job, "queued")
            else:
                # failed / cancelled / interrupted: re-enqueue; the
                # executor resumes the checkpointed store bit-for-bit.
                job.cancelled = False
                job.stop = threading.Event()
                self._set_state(job, "queued")
                job.counts = self._counts_from_disk(job_id)
            self._queue.put(job_id)
            view = job.view()
            view["attached"] = False
            return view

    def view(self, job_id: str) -> dict:
        """The job's status payload; raises ``KeyError`` when unknown."""
        with self._lock:
            return self._jobs[job_id].view()

    def views(self) -> "list[dict]":
        """All jobs, in submission order."""
        with self._lock:
            return [self._jobs[job_id].view() for job_id in self._order]

    def state(self, job_id: str) -> str:
        with self._lock:
            return self._jobs[job_id].state

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued or running job; terminal states are no-ops."""
        with self._lock:
            job = self._jobs[job_id]
            if job.state == "queued":
                job.cancelled = True
                self._set_state(job, "cancelled")
            elif job.state == "running":
                job.cancelled = True
                job.stop.set()  # the executor journals the state change
            return job.view()

    # -- the executor ------------------------------------------------------

    def _drain(self) -> None:
        while not self._shutdown.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            with self._lock:
                job = self._jobs[job_id]
                if job.cancelled or job.state != "queued":
                    continue  # cancelled while queued (already journaled)
                job.stop = threading.Event()
                if self._shutdown.is_set():
                    # Too late to start: leave it for the next daemon.
                    self._set_state(job, "interrupted")
                    continue
                self._set_state(job, "running")
                job.counts = self._counts_from_disk(job_id)
            self._run(job)

    def _run(self, job: Job) -> None:
        def progress(cell, record) -> None:
            with self._lock:
                self._tally(job.counts, record)

        try:
            store = run_study(
                job.spec,
                store_path=self.store_path(job.id),
                resume=True,
                progress=progress,
                on_error="record",
                workers=self._workers,
                max_inflight=self._max_inflight,
                cache=self._cache,
                deadline_s=self._deadline_s,
                max_attempts=self._max_attempts,
                stop_event=job.stop,
            )
        except Exception as exc:  # the runner itself failed
            with self._lock:
                self._set_state(job, "failed", error=f"{type(exc).__name__}: {exc}")
            return
        with self._lock:
            job.counts = dict(_ZERO_COUNTS)
            for record in store.records():
                self._tally(job.counts, record)
            if job.cancelled:
                self._set_state(job, "cancelled")
            elif store.interrupted:
                self._set_state(job, "interrupted")
            elif store.is_complete():
                self._set_state(job, "done")
            else:
                broken = [r for r in store.records() if not r.ok]
                self._set_state(
                    job,
                    "failed",
                    error=(
                        f"{len(broken)} of {job.num_cells} cells broken "
                        "(resubmit to re-attempt them)"
                    ),
                )

    # -- results -----------------------------------------------------------

    def journal_path(self, job_id: str) -> str:
        """The job store's live sidecar journal (the /events tail)."""
        return journal_path(self.store_path(job_id))

    def load_store(self, job_id: str):
        """The job's checkpointed store; raises ``FileNotFoundError``."""
        return load_study_store(self.store_path(job_id))
