"""``repro serve`` — the study-execution daemon.

The service layer turns the study runner into a long-lived process
speaking a small, versioned JSON wire protocol over HTTP (stdlib
``http.server`` — no new dependencies):

* :mod:`repro.serve.protocol` — the wire format: protocol-stamped
  payloads, the job lifecycle, the ndjson event vocabulary.
* :class:`JobManager` (``jobs.py``) — the durable job queue: dedup by
  ``spec_hash``, a CRC-journaled ``jobs.jsonl``, ONE executor thread
  draining submissions through :func:`~repro.study.run_study` with
  ``resume=True`` — so a killed daemon restarted on the same state dir
  finishes every in-flight job bit-for-bit.
* :class:`StudyServer` / :func:`serve` (``server.py``) — the HTTP
  surface: ``POST /jobs``, ``GET /jobs[/<id>[/events|/results]]``,
  ``POST /jobs/<id>/cancel``; ``/events`` streams progress by tailing
  the store's crash-safe journal through
  :class:`~repro.study.store.JournalReader`.
* :class:`ServeClient` (``client.py``) — the stdlib client behind the
  ``repro study submit / status / watch / results / cancel`` verbs.

The design rule throughout: the service adds *no second source of
truth*.  Results live only in study stores, progress is the store
journal, durability is the journal contract the offline runner already
honours — the daemon only adds an address, a queue, and a stream.
"""

from .client import ServeClient, ServeError
from .jobs import Job, JobManager
from .protocol import (
    JOB_STATES,
    PROTOCOL_VERSION,
    TERMINAL_STATES,
    ProtocolError,
)
from .server import StudyServer, serve

__all__ = [
    "JOB_STATES",
    "Job",
    "JobManager",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "StudyServer",
    "TERMINAL_STATES",
    "serve",
]
