"""The daemon's versioned JSON wire protocol.

Every body the daemon sends or accepts is a JSON object stamped with
``"protocol": PROTOCOL_VERSION``; a client (or server) receiving a
version it does not speak rejects the message with
:class:`ProtocolError` instead of guessing.  The payloads themselves
reuse the study layer's canonical encodings — a submission carries
:meth:`StudySpec.to_dict` verbatim, results carry
:meth:`StudyStore.to_dict` verbatim — so the wire format inherits the
stability guarantees (and tests) of the on-disk formats rather than
inventing parallel ones.

Job lifecycle
-------------

A job is identified by its spec's content hash (``spec_hash``), which
makes submission idempotent: re-submitting a spec that is already
``queued`` / ``running`` / ``done`` *attaches* to the existing job
(``"attached": true`` in the response) instead of recomputing.  States:

``queued``
    Accepted and validated (the whole grid compiled eagerly), waiting
    for the single-writer executor.
``running``
    The executor is driving ``run_study`` for this spec.
``done``
    Every cell recorded ``ok``; the columnar store is final.
``failed``
    The run finished but some cells are ``failed``/``timeout`` (or the
    runner itself raised).  Re-submitting re-enqueues: ``resume=True``
    re-attempts exactly the broken cells.
``cancelled``
    Cancelled by a client before or during execution.  Re-submitting
    re-enqueues and resumes from the checkpoint.
``interrupted``
    The daemon shut down gracefully mid-run; the journal checkpoint is
    intact.  A restarted daemon re-enqueues these automatically.

Event stream
------------

``GET /jobs/<id>/events`` is newline-delimited JSON (one event object
per line): a ``hello`` first, then one ``record`` per completed cell
(light fields only — the full records travel via ``/results``),
``ping`` heartbeats while idle, and a final ``done`` carrying the
terminal job view.
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "ACTIVE_STATES",
    "JOB_STATES",
    "PROTOCOL_VERSION",
    "RESUMABLE_STATES",
    "TERMINAL_STATES",
    "ProtocolError",
    "check_protocol",
    "done_event",
    "envelope",
    "error_body",
    "hello_event",
    "parse_submit_request",
    "ping_event",
    "record_event",
    "submit_request",
]

PROTOCOL_VERSION = 1

#: Every state a job can report.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "interrupted")
#: States in which a re-submission attaches instead of re-enqueueing.
ACTIVE_STATES = ("queued", "running", "done")
#: Terminal-until-resubmitted states: a new submission re-enqueues the
#: job with ``resume=True`` semantics (broken cells re-attempted, the
#: checkpointed prefix kept bit-for-bit).
RESUMABLE_STATES = ("failed", "cancelled", "interrupted")
#: States after which an event stream ends (``interrupted`` included:
#: the daemon is going away; a restarted daemon resumes the job and a
#: re-attached watcher sees the replayed prefix plus the new records).
TERMINAL_STATES = ("done", "failed", "cancelled", "interrupted")


class ProtocolError(ValueError):
    """A wire message this endpoint does not speak."""


def envelope(payload: dict) -> dict:
    """Stamp a payload with the protocol version (a fresh dict)."""
    return {"protocol": PROTOCOL_VERSION, **payload}


def check_protocol(payload) -> dict:
    """Validate an incoming body's shape and version; return it as dict."""
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"expected a JSON object, got {type(payload).__name__}")
    version = payload.get("protocol")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} not supported; this endpoint "
            f"speaks version {PROTOCOL_VERSION}"
        )
    return dict(payload)


# -- requests ---------------------------------------------------------------


def submit_request(spec_payload: dict) -> dict:
    """The ``POST /jobs`` body for a :meth:`StudySpec.to_dict` payload."""
    return envelope({"spec": spec_payload})


def parse_submit_request(payload) -> dict:
    """Validate a ``POST /jobs`` body; return the spec payload."""
    body = check_protocol(payload)
    spec = body.get("spec")
    if not isinstance(spec, Mapping):
        raise ProtocolError("submit body needs a 'spec' table (StudySpec.to_dict)")
    return dict(spec)


# -- event-stream lines -----------------------------------------------------


def hello_event(view: dict) -> dict:
    """The stream's opening line: protocol stamp plus the job view."""
    return envelope({"event": "hello", "job": view})


def record_event(record) -> dict:
    """One completed cell, light fields only.

    ``record`` is a :class:`~repro.study.store.RunRecord`; the heavy
    columns (per-replica times, trajectories) stay out of the stream —
    clients fetch the full store via ``/results`` when the job is done.
    """
    ok = record.status == "ok"
    return {
        "event": "record",
        "index": int(record.index),
        "cell_id": record.cell_id,
        "status": record.status,
        "backend": record.resolved_backend,
        "cache_hit": bool(record.cache_hit),
        "degraded_from": record.degraded_from,
        "wall_time_s": round(float(record.wall_time_s), 6),
        "unit": record.unit,
        "mean": round(float(record.times.mean()), 6) if ok and len(record.times) else None,
    }


def ping_event() -> dict:
    """Heartbeat while no cell has finished; keeps client reads alive."""
    return {"event": "ping"}


def done_event(view: dict) -> dict:
    """The stream's final line: the terminal job view."""
    return envelope({"event": "done", "job": view})


# -- errors -----------------------------------------------------------------


def error_body(message: str) -> dict:
    """A uniform error payload for non-2xx responses."""
    return envelope({"error": str(message)})
