"""Graph abstractions with vectorised uniform neighbor sampling.

Only one operation is needed by the Voter / coalescence engines: given a
vector of node ids, draw one uniform neighbor for each — the Uniform Pull
primitive.  :class:`CompleteGraph` implements the paper's setting (where a
"neighbor" is a uniformly random node, self included, matching
``α^V_i = c_i/n``); :class:`ExplicitGraph` wraps an arbitrary undirected
graph (e.g. built by networkx) in CSR adjacency form for O(1) sampling.
"""

from __future__ import annotations

import abc

import networkx as nx
import numpy as np

__all__ = [
    "SampleableGraph",
    "CompleteGraph",
    "CycleGraph",
    "ExplicitGraph",
    "random_regular_graph",
]


class SampleableGraph(abc.ABC):
    """A graph exposing batched uniform neighbor sampling."""

    #: Number of nodes.
    num_nodes: int

    @abc.abstractmethod
    def sample_neighbors(
        self, nodes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One uniform neighbor per entry of ``nodes`` (vectorised)."""

    def pull_matrix(self, rounds: int, rng: np.random.Generator) -> np.ndarray:
        """Pre-draw pull choices for every node and round.

        Returns ``Y`` of shape ``(rounds, num_nodes)`` with
        ``Y[t, u]`` the node that ``u`` pulls from in round ``t`` — the
        shared-randomness object of the Lemma-4 duality coupling.
        """
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        all_nodes = np.arange(self.num_nodes, dtype=np.int64)
        out = np.empty((rounds, self.num_nodes), dtype=np.int64)
        for t in range(rounds):
            out[t] = self.sample_neighbors(all_nodes, rng)
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.num_nodes})"


class CompleteGraph(SampleableGraph):
    """The paper's substrate: every pull hits a uniform node.

    ``include_self=True`` (default) matches the paper's process functions
    exactly (a node can sample itself: ``α^V_i = c_i / n``).  Set it to
    False for the classical graph-theoretic complete graph ``K_n``.
    """

    def __init__(self, num_nodes: int, include_self: bool = True):
        if num_nodes < 1:
            raise ValueError("graph needs at least one node")
        if num_nodes == 1 and not include_self:
            raise ValueError("K_1 without self-loops has no neighbors to pull")
        self.num_nodes = int(num_nodes)
        self.include_self = bool(include_self)

    def sample_neighbors(
        self, nodes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = self.num_nodes
        draws = rng.integers(0, n if self.include_self else n - 1, size=nodes.shape)
        if self.include_self:
            return draws
        # Skip-over-self trick: values >= own id shift up by one.
        return draws + (draws >= nodes)


class CycleGraph(SampleableGraph):
    """The n-cycle: each pull picks the left or right neighbor uniformly.

    Included as a high-mixing-time contrast for the duality experiments:
    Lemma 4's *exact* coupling holds on every graph, including ones where
    the coalescence time is far from the complete graph's ``Θ(n)``.

    .. warning::
       For *even* ``n`` the cycle is bipartite and the synchronous Voter
       process can absorb into the alternating 2-coloring, oscillating
       forever without consensus — dually, two coalescing walks started
       at odd distance preserve their distance parity and never meet.
       This is a property of synchronous dynamics on bipartite graphs,
       not a bug; use an odd cycle when consensus must be reachable.
    """

    def __init__(self, num_nodes: int):
        if num_nodes < 3:
            raise ValueError("a cycle needs at least three nodes")
        self.num_nodes = int(num_nodes)

    def sample_neighbors(
        self, nodes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        steps = rng.choice(np.asarray([-1, 1], dtype=np.int64), size=nodes.shape)
        return (nodes + steps) % self.num_nodes


class ExplicitGraph(SampleableGraph):
    """An arbitrary undirected graph in CSR adjacency form.

    Accepts any connected :class:`networkx.Graph` with nodes relabelled to
    ``0..n-1``; sampling draws a uniform entry of each node's adjacency
    slice.
    """

    def __init__(self, graph: "nx.Graph"):
        if graph.number_of_nodes() < 2:
            raise ValueError("graph needs at least two nodes")
        nodes = sorted(graph.nodes())
        if nodes != list(range(len(nodes))):
            graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
        if not nx.is_connected(graph):
            raise ValueError("graph must be connected for consensus to be reachable")
        n = graph.number_of_nodes()
        degrees = np.zeros(n, dtype=np.int64)
        for u in range(n):
            degrees[u] = graph.degree[u]
        if np.any(degrees == 0):
            raise ValueError("isolated nodes cannot pull")
        self.num_nodes = n
        self._offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=self._offsets[1:])
        self._adjacency = np.empty(int(degrees.sum()), dtype=np.int64)
        cursor = self._offsets[:-1].copy()
        for u, v in graph.edges():
            self._adjacency[cursor[u]] = v
            cursor[u] += 1
            self._adjacency[cursor[v]] = u
            cursor[v] += 1
        self._degrees = degrees

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return int(self._degrees[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Adjacency slice of ``node`` (read-only view)."""
        return self._adjacency[self._offsets[node]: self._offsets[node + 1]]

    def sample_neighbors(
        self, nodes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        degs = self._degrees[nodes]
        picks = (rng.random(nodes.shape) * degs).astype(np.int64)
        return self._adjacency[self._offsets[nodes] + picks]


def random_regular_graph(
    num_nodes: int, degree: int, rng: np.random.Generator
) -> ExplicitGraph:
    """A connected random ``degree``-regular graph (networkx-backed).

    Retries the configuration-model draw until connected (a.a.s. immediate
    for ``degree ≥ 3``).
    """
    if degree < 3:
        raise ValueError("use degree >= 3 so the graph is a.a.s. connected")
    for _ in range(64):
        seed = int(rng.integers(2**31 - 1))
        candidate = nx.random_regular_graph(degree, num_nodes, seed=seed)
        if nx.is_connected(candidate):
            return ExplicitGraph(candidate)
    raise RuntimeError("failed to draw a connected random regular graph")
