"""Communication substrate: graphs with uniform-pull neighbor sampling.

The paper's processes run on the complete graph, but two of its
ingredients — the Voter process and the coalescing random walks duality
(Lemma 4) — hold on *any* graph, and the related-work results it builds
on (e.g. [CEOR13], [BGKMT16]) are graph-general.  This package provides
the minimal graph abstraction the engines need: batched uniform neighbor
sampling.
"""

from .graph import (
    CompleteGraph,
    CycleGraph,
    ExplicitGraph,
    SampleableGraph,
    random_regular_graph,
)

__all__ = [
    "CompleteGraph",
    "CycleGraph",
    "ExplicitGraph",
    "SampleableGraph",
    "random_regular_graph",
]
