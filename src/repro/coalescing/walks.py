"""Synchronous coalescing random walks.

The process dual to Voter (Section 3.2): initially one walk sits on every
node; in each synchronous step every walk moves to a uniform neighbor of
its current node, and walks meeting on a node coalesce into one.  The
coalescence time ``T^k_C`` — the first step with at most ``k`` walks —
equals the Voter color-reduction time ``T^k_V`` under the Lemma-4
coupling, and satisfies ``E[T^k_C] ≤ 20 n / k`` on the complete graph
(Equation (18)), which powers the paper's Lemma 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import SampleableGraph

__all__ = ["CoalescingWalks", "CoalescenceRun", "coalescence_reduction_time"]


@dataclass
class CoalescenceRun:
    """Trajectory of a coalescing-random-walks run."""

    walk_counts: np.ndarray  # walk_counts[t] = #walks after t steps
    rounds: int
    reached: bool

    @property
    def final_walks(self) -> int:
        return int(self.walk_counts[-1])


class CoalescingWalks:
    """Simulator for synchronous coalescing random walks on a graph.

    The state is the *set of occupied nodes*; because all walks use
    independent uniform pulls, walks sharing a node are interchangeable
    and only the occupied set matters.  Each step moves every occupied
    node's walk to a sampled neighbor and deduplicates.
    """

    def __init__(self, graph: SampleableGraph):
        self.graph = graph

    def initial_positions(self) -> np.ndarray:
        """One walk per node (the leader-election start of Lemma 3)."""
        return np.arange(self.graph.num_nodes, dtype=np.int64)

    def step(
        self, positions: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One synchronous move-and-merge step; returns occupied nodes."""
        moved = self.graph.sample_neighbors(positions, rng)
        return np.unique(moved)

    def run_until(
        self,
        target_walks: int,
        rng: np.random.Generator,
        max_steps: "int | None" = None,
        positions: "np.ndarray | None" = None,
    ) -> CoalescenceRun:
        """Run until at most ``target_walks`` walks remain.

        Returns the full walk-count trajectory so callers can study the
        drift ``E[X_{t+1} − X_t | X_t = x] ≈ −x²/(c·n)`` from Section 3.2.
        """
        if target_walks < 1:
            raise ValueError("target_walks must be at least 1")
        state = self.initial_positions() if positions is None else np.unique(positions)
        limit = max_steps if max_steps is not None else 400 * self.graph.num_nodes + 10_000
        counts = [state.size]
        steps = 0
        while state.size > target_walks and steps < limit:
            state = self.step(state, rng)
            counts.append(state.size)
            steps += 1
        return CoalescenceRun(
            walk_counts=np.asarray(counts, dtype=np.int64),
            rounds=steps,
            reached=state.size <= target_walks,
        )

    def meeting_time(
        self,
        u: int,
        v: int,
        rng: np.random.Generator,
        max_steps: "int | None" = None,
    ) -> int:
        """Steps until two specific walks first share a node (coalesce).

        Used by the drift tests: on the complete graph two walks meet with
        probability ``1/n`` per step, so the meeting time is geometric with
        mean ``n``.
        """
        if u == v:
            return 0
        limit = max_steps if max_steps is not None else 2000 * self.graph.num_nodes
        positions = np.asarray([u, v], dtype=np.int64)
        for t in range(1, limit + 1):
            positions = self.graph.sample_neighbors(positions, rng)
            if positions[0] == positions[1]:
                return t
        raise RuntimeError(f"walks failed to meet within {limit} steps")


def coalescence_reduction_time(
    graph: SampleableGraph,
    k: int,
    rng: np.random.Generator,
    max_steps: "int | None" = None,
) -> int:
    """``T^k_C`` from the all-nodes start (raises if the limit is hit)."""
    run = CoalescingWalks(graph).run_until(k, rng, max_steps=max_steps)
    if not run.reached:
        raise RuntimeError(
            f"coalescence did not reach {k} walks within {run.rounds} steps"
        )
    return run.rounds
