"""Coalescing random walks and the Voter duality (Lemma 3 / Lemma 4)."""

from .duality import (
    DualityWitness,
    coalescence_counts_forward,
    run_duality_coupling,
    voter_opinion_counts_forward,
    voter_opinions_reversed,
    walk_positions_forward,
)
from .walks import CoalescenceRun, CoalescingWalks, coalescence_reduction_time

__all__ = [
    "CoalescenceRun",
    "CoalescingWalks",
    "DualityWitness",
    "coalescence_counts_forward",
    "coalescence_reduction_time",
    "run_duality_coupling",
    "voter_opinion_counts_forward",
    "voter_opinions_reversed",
    "walk_positions_forward",
]
