"""The Voter / coalescing-random-walks duality — Lemma 4 and Figure 1.

Fix a horizon ``T`` and draw, once, the pull choices
``Y[t, u] =`` (the node ``u`` pulls from in round ``t``).  Then:

* running **coalescing walks forward** for ``T`` steps, the walk started
  at ``u`` ends at ``X_T(u) = Y[T−1](Y[T−2](··· Y[0](u)))``;
* running **Voter** for ``T`` rounds *consuming the same choices in
  reverse chronological order* (round 1 uses ``Y[T−1]``, round ``T`` uses
  ``Y[0]``), node ``u``'s final opinion is the *same composition*
  ``O(u) = Y[T−1](Y[T−2](··· Y[0](u)))``.

Hence the final opinion map equals the final walk-position map *surely*
under this coupling — in particular the number of remaining opinions
equals the number of surviving walks, which is Lemma 4's
``T^k_V = T^k_C``.  Because the per-round choices are i.i.d., the
order-reversed Voter run is distributed exactly as a normal Voter run, so
the identity transfers to the original process in distribution.

This module implements the coupling on arbitrary graphs and packages the
checks used by experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import SampleableGraph

__all__ = [
    "DualityWitness",
    "walk_positions_forward",
    "voter_opinions_reversed",
    "voter_opinion_counts_forward",
    "run_duality_coupling",
]


def walk_positions_forward(pull_choices: np.ndarray) -> np.ndarray:
    """Final walk positions ``X_T(u)`` under choices ``Y`` (shape (T, n)).

    Step ``t`` moves the walk at node ``w`` to ``Y[t, w]``; composing over
    all rounds yields ``X_T = Y[T−1] ∘ ··· ∘ Y[0]`` applied to the identity.
    """
    rounds, n = pull_choices.shape
    positions = np.arange(n, dtype=np.int64)
    for t in range(rounds):
        positions = pull_choices[t][positions]
    return positions


def voter_opinions_reversed(pull_choices: np.ndarray) -> np.ndarray:
    """Final Voter opinions when rounds consume ``Y`` in reverse order.

    Voter semantics: in its round ``s`` node ``u`` adopts the *previous*
    opinion of the node it pulls from.  Using mapping ``Y[T−s]`` in round
    ``s`` gives final opinion ``O(u) = Y[T−1](··· Y[0](u))`` — identical to
    :func:`walk_positions_forward`.  Initial opinions are the node ids
    (the pairwise-distinct leader-election start).
    """
    rounds, n = pull_choices.shape
    opinions = np.arange(n, dtype=np.int64)
    for s in range(1, rounds + 1):
        mapping = pull_choices[rounds - s]
        opinions = opinions[mapping]
    return opinions


def voter_opinion_counts_forward(pull_choices: np.ndarray) -> np.ndarray:
    """Remaining-opinion counts of a *normal-order* Voter run, per round.

    Entry ``t`` is the number of distinct opinions after round ``t``
    (entry 0 is ``n``).  Used for the distributional side of Lemma 4: the
    trajectory law matches the coalescence walk-count law even though the
    surely-equal coupling needs the reversed order.
    """
    rounds, n = pull_choices.shape
    opinions = np.arange(n, dtype=np.int64)
    counts = np.empty(rounds + 1, dtype=np.int64)
    counts[0] = n
    for t in range(rounds):
        opinions = opinions[pull_choices[t]]
        counts[t + 1] = np.unique(opinions).size
    return counts


@dataclass(frozen=True)
class DualityWitness:
    """The coupled outcome of one shared-randomness horizon-``T`` run."""

    horizon: int
    walk_positions: np.ndarray
    voter_opinions: np.ndarray
    walks_remaining: int
    opinions_remaining: int

    @property
    def maps_identical(self) -> bool:
        """Lemma 4's surely-equal statement: the two maps coincide."""
        return bool(np.array_equal(self.walk_positions, self.voter_opinions))

    @property
    def counts_equal(self) -> bool:
        """The weaker count identity ``|walks| = |opinions|``."""
        return self.walks_remaining == self.opinions_remaining


def run_duality_coupling(
    graph: SampleableGraph, horizon: int, rng: np.random.Generator
) -> DualityWitness:
    """Draw shared pull choices and evaluate both processes (Figure 1).

    The returned witness satisfies ``maps_identical`` (and therefore
    ``counts_equal``) with probability one; the test-suite asserts it over
    many seeds, horizons and graph families.
    """
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    pull_choices = graph.pull_matrix(horizon, rng)
    walks = walk_positions_forward(pull_choices)
    opinions = voter_opinions_reversed(pull_choices)
    return DualityWitness(
        horizon=horizon,
        walk_positions=walks,
        voter_opinions=opinions,
        walks_remaining=int(np.unique(walks).size),
        opinions_remaining=int(np.unique(opinions).size),
    )


def coalescence_counts_forward(pull_choices: np.ndarray) -> np.ndarray:
    """Walk counts after each forward step under the shared choices.

    Entry ``t`` is the number of surviving walks after ``t`` steps.
    Compared distributionally against
    :func:`voter_opinion_counts_forward` in the E6 bench.
    """
    rounds, n = pull_choices.shape
    positions = np.arange(n, dtype=np.int64)
    counts = np.empty(rounds + 1, dtype=np.int64)
    counts[0] = n
    for t in range(rounds):
        positions = np.unique(pull_choices[t][positions])
        counts[t + 1] = positions.size
    return counts


__all__.append("coalescence_counts_forward")
