"""repro — a reproduction of *"Ignore or Comply? On Breaking Symmetry in
Consensus"* (Berenbrink, Clementi, Elsässer, Kling, Mallmann-Trenn,
Natale; PODC 2017, arXiv:1702.04921).

The library implements the paper's consensus dynamics (Voter, 2-Choices,
3-Majority, general h-Majority, plus the related 2-Median and
Undecided-State dynamics), its anonymous-consensus-process comparison
framework (majorization, protocol dominance, Strassen couplings), the
coalescing-random-walks duality, dynamic adversaries, and a benchmark
harness that validates every theorem, lemma and counterexample in the
paper.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.

Quickstart
----------
>>> from repro import Configuration, ThreeMajority, consensus_time
>>> start = Configuration.singletons(256)          # leader election
>>> consensus_time(ThreeMajority(), start, rng=7)  # doctest: +SKIP
211
"""

from .core import (
    ACProcessFunction,
    Configuration,
    HMajorityFunction,
    ThreeMajorityFunction,
    VoterFunction,
    appendix_b_counterexample,
    majorizes,
    strassen_coupling,
    verify_dominance_exhaustive,
)
from .engine import (
    ColorsAtMost,
    Consensus,
    EnsembleMetricRecorder,
    MaxSupportAbove,
    MetricRecorder,
    ShardedEnsembleExecutor,
    SimulationResult,
    consensus_time,
    reduction_time,
    run,
    run_ensemble,
    symmetry_breaking_time,
)
from .processes import (
    HMajority,
    ThreeMajority,
    TwoChoices,
    TwoMedian,
    UndecidedDynamics,
    Voter,
    make_process,
)

__version__ = "1.0.0"

__all__ = [
    "ACProcessFunction",
    "ColorsAtMost",
    "Configuration",
    "Consensus",
    "EnsembleMetricRecorder",
    "HMajority",
    "HMajorityFunction",
    "MaxSupportAbove",
    "MetricRecorder",
    "ShardedEnsembleExecutor",
    "SimulationResult",
    "ThreeMajority",
    "ThreeMajorityFunction",
    "TwoChoices",
    "TwoMedian",
    "UndecidedDynamics",
    "Voter",
    "VoterFunction",
    "__version__",
    "appendix_b_counterexample",
    "consensus_time",
    "majorizes",
    "make_process",
    "reduction_time",
    "run",
    "run_ensemble",
    "strassen_coupling",
    "symmetry_breaking_time",
    "verify_dominance_exhaustive",
]
