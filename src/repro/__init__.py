"""repro — a reproduction of *"Ignore or Comply? On Breaking Symmetry in
Consensus"* (Berenbrink, Clementi, Elsässer, Kling, Mallmann-Trenn,
Natale; PODC 2017, arXiv:1702.04921).

The library implements the paper's consensus dynamics (Voter, 2-Choices,
3-Majority, general h-Majority, plus the related 2-Median and
Undecided-State dynamics), its anonymous-consensus-process comparison
framework (majorization, protocol dominance, Strassen couplings), the
coalescing-random-walks duality, dynamic adversaries, crash / recovery /
message-loss fault injection, and a benchmark harness that validates
every theorem, lemma and counterexample in the paper.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.

Quickstart
----------
The public facade is :mod:`repro.api` — three declarative verbs behind
which every execution strategy (vectorized ensembles, sharded pools,
async scheduler, §5 adversaries) is an axis, not an import:

>>> import repro
>>> repro.simulate("3-majority", n=256, seed=7).times      # doctest: +SKIP
array([24])
>>> repro.sweep("voter", [64, 128, 256], repetitions=5, seed=1)  # doctest: +SKIP
>>> repro.study("studies/consensus_scaling.toml")          # doctest: +SKIP

Whole experiment suites are :class:`~repro.study.StudySpec` files —
declarative TOML artifacts you can save, diff, hash, resume and share
(see ``studies/`` and ``python -m repro study --help``).
"""

from .core import (
    ACProcessFunction,
    Configuration,
    HMajorityFunction,
    ThreeMajorityFunction,
    VoterFunction,
    appendix_b_counterexample,
    majorizes,
    strassen_coupling,
    verify_dominance_exhaustive,
)
from .engine import (
    ColorsAtMost,
    Consensus,
    EnsembleMetricRecorder,
    MaxSupportAbove,
    MetricRecorder,
    ShardedEnsembleExecutor,
    SimulationResult,
    consensus_time,
    reduction_time,
    run,
    run_ensemble,
    symmetry_breaking_time,
)
from .faults import (
    CrashRecovery,
    CrashStop,
    FaultSchedule,
    MessageLoss,
)
from .processes import (
    HMajority,
    ThreeMajority,
    TwoChoices,
    TwoMedian,
    UndecidedDynamics,
    Voter,
    make_process,
)

__version__ = "1.1.0"

from . import api
from .api import simulate, study, sweep, validate
from .study import (
    RunRecord,
    StoreCorruptError,
    StudySpec,
    StudyStore,
    compile_study,
    load_spec,
    load_study_store,
    run_study,
    save_spec,
    study_report,
)

__all__ = [
    "CrashRecovery",
    "CrashStop",
    "FaultSchedule",
    "MessageLoss",
    "RunRecord",
    "StoreCorruptError",
    "StudySpec",
    "StudyStore",
    "api",
    "compile_study",
    "load_spec",
    "load_study_store",
    "run_study",
    "save_spec",
    "simulate",
    "study",
    "study_report",
    "sweep",
    "ACProcessFunction",
    "ColorsAtMost",
    "Configuration",
    "Consensus",
    "EnsembleMetricRecorder",
    "HMajority",
    "HMajorityFunction",
    "MaxSupportAbove",
    "MetricRecorder",
    "ShardedEnsembleExecutor",
    "SimulationResult",
    "ThreeMajority",
    "ThreeMajorityFunction",
    "TwoChoices",
    "TwoMedian",
    "UndecidedDynamics",
    "Voter",
    "VoterFunction",
    "__version__",
    "appendix_b_counterexample",
    "consensus_time",
    "majorizes",
    "make_process",
    "reduction_time",
    "run",
    "run_ensemble",
    "strassen_coupling",
    "symmetry_breaking_time",
    "validate",
    "verify_dominance_exhaustive",
]
