"""The public facade: ``repro.api`` — simulate, sweep, study, validate.

Four verbs cover what users do with the library, all declarative and
all funnelled through the same stack (StudySpec → study cells →
:class:`~repro.engine.plan.SimulationPlan` → the backend registry of
:mod:`repro.engine.runtime`):

``simulate(...)``
    One measurement: a named (or given) process on a named workload,
    under any model axes, returning the runtime's uniform
    :class:`~repro.engine.runtime.ExecutionResult`.

``sweep(...)``
    A scaling sweep over ``n`` — the declarative replacement for the
    callable-parameterised harness — returning the familiar
    :class:`~repro.experiments.harness.SweepResult` (tables, power-law
    fits, JSON persistence).

``study(...)``
    A full experiment suite from a :class:`~repro.study.StudySpec` (or a
    TOML path), with a provenance-carrying result store and bit-for-bit
    ``resume=``.

``validate(...)``
    Compile-only: eagerly expand and validate a spec's whole grid
    without running anything — the gate shared by ``repro study
    validate`` and the daemon's ``POST /jobs``.

Everything here is re-exported from the top-level package::

    >>> import repro
    >>> repro.simulate("3-majority", n=256, seed=7).times  # doctest: +SKIP
    array([24])
"""

from __future__ import annotations

from typing import Callable, Sequence

from .core.configuration import Configuration
from .engine.batch import first_passage_plan
from .engine.rng import RandomSource
from .engine.runtime import ExecutionResult, execute
from .engine.stopping import StoppingCondition
from .experiments.harness import SweepResult, sweep_result_from_records
from .experiments.workloads import resolve_workload
from .processes.base import AgentProcess
from .processes.registry import make_process
from .study.compile import build_adversary, parse_stop, validate_study
from .study.runner import run_study
from .study.spec import StudySpec
from .study.store import StudyStore
from .study.toml_io import load_spec

__all__ = ["simulate", "sweep", "study", "validate"]


def _as_process_factory(process) -> "Callable[[], AgentProcess]":
    """Accept a registry name, an instance, or a zero-arg factory."""
    if isinstance(process, str):
        name = process
        return lambda: make_process(name)
    if isinstance(process, AgentProcess):
        return lambda: process
    if callable(process):
        return process
    raise TypeError(
        f"process must be a registry name, an AgentProcess or a factory; "
        f"got {type(process).__name__}"
    )


def _as_stop(stop) -> "StoppingCondition | None":
    if stop is None or isinstance(stop, StoppingCondition):
        return stop
    if isinstance(stop, str):
        return parse_stop(stop)
    raise TypeError(f"stop must be a rule string or StoppingCondition, got {stop!r}")


def _as_adversary(adversary, n: int, colors: int):
    from .adversary.adversary import Adversary, AdversarySchedule

    if adversary is None or isinstance(adversary, (Adversary, AdversarySchedule)):
        return adversary
    return build_adversary(adversary, n, colors)


def _as_faults(faults):
    """Accept a FaultModel/FaultSchedule, a declarative dict, or a CLI string."""
    from .faults import FaultModel, FaultSchedule, build_fault_schedule

    if faults is None or isinstance(faults, (FaultModel, FaultSchedule)):
        return faults
    return build_fault_schedule(faults)


def simulate(
    process,
    *,
    n: int = 1024,
    workload="singletons",
    initial: "Configuration | None" = None,
    seed: RandomSource = None,
    repetitions: int = 1,
    stop="consensus",
    scheduler: str = "synchronous",
    adversary=None,
    faults=None,
    backend: str = "auto",
    rng_mode: str = "batched",
    max_rounds: "int | None" = None,
    workers: "int | None" = None,
    recorder=None,
    raise_on_limit: bool = True,
    stable_fraction: float = 0.95,
    stable_rounds: int = 3,
) -> ExecutionResult:
    """Run one measurement and return the runtime's uniform result.

    ``process`` is a registry name (``"3-majority"``), an
    :class:`~repro.processes.base.AgentProcess`, or a factory.
    ``workload`` is a :data:`~repro.experiments.workloads.WORKLOADS`
    name or ``{"name": ..., "kwargs": {...}}`` (ignored when an explicit
    ``initial`` configuration is given).  ``stop`` takes the declarative
    rule strings of :func:`repro.study.compile.parse_stop`; ``adversary``
    a §5 strategy dict like ``{"name": "plant-invalid", "budget": 4}``
    (or an instance); ``faults`` a declarative fault table like
    ``{"crash": 0.01, "recover": 0.1}``, a CLI-style string
    (``"crash:p=0.01,recover=0.1"``), or a
    :class:`~repro.faults.FaultSchedule` / model instance.  Everything
    else is a plan axis with the meanings documented on
    :class:`~repro.engine.plan.SimulationPlan`.
    """
    if initial is None:
        initial = resolve_workload(workload, n)
    plan = first_passage_plan(
        process_factory=_as_process_factory(process),
        initial=initial,
        stop=_as_stop(stop),
        repetitions=repetitions,
        rng=seed,
        max_rounds=max_rounds,
        backend=backend,
        rng_mode=rng_mode,
        workers=workers,
        scheduler=scheduler,
        adversary=_as_adversary(adversary, initial.num_nodes, initial.num_colors),
        faults=_as_faults(faults),
        recorder=recorder,
        stable_fraction=stable_fraction,
        stable_rounds=stable_rounds,
        raise_on_limit=raise_on_limit,
    )
    return execute(plan)


def sweep(
    process: str,
    n_values: Sequence,
    *,
    repetitions: int = 5,
    seed: int = 0,
    workload="singletons",
    stop: str = "consensus",
    scheduler: str = "synchronous",
    adversary=None,
    faults=None,
    backend: str = "auto",
    rng_mode: str = "batched",
    max_rounds: "int | None" = None,
    workers: "int | None" = None,
    predicted: "Callable[[int], float] | None" = None,
    name: "str | None" = None,
    param_name: str = "n",
    raise_on_limit: bool = True,
    stable_fraction: float = 0.95,
    stable_rounds: int = 3,
) -> SweepResult:
    """A declarative consensus-time scaling sweep over ``n``.

    Builds a one-axis :class:`~repro.study.StudySpec` (``n`` sweeps,
    everything else fixed), runs it through :func:`repro.study.run_study`
    and converts the records to a :class:`SweepResult` so the table /
    fit / persistence machinery keeps working unchanged.  ``predicted``
    is the paper-scale column (a presentation concern — evaluated at
    conversion, never stored in provenance); ``adversary`` is the
    declarative dict form, with a missing ``budget`` resolving to the
    [BCN+16] recommended scale *per sweep point*.

    The spec seed derivation matches the historical harness
    (:func:`~repro.engine.rng.derive_seed` per point index), so a sweep
    through this facade reproduces the same samples as the legacy
    :func:`~repro.experiments.harness.sweep_first_passage` call it
    replaces, backend for backend, bit for bit.
    """
    spec = StudySpec(
        name=name or f"sweep {process} over {param_name}",
        seed=seed,
        repetitions=repetitions,
        expansion="grid",
        workers=workers,
        stable_fraction=stable_fraction,
        stable_rounds=stable_rounds,
        raise_on_limit=raise_on_limit,
        axes={
            "process": [process],
            "workload": [workload],
            "n": [int(n) for n in n_values],
            "scheduler": [scheduler],
            "adversary": [adversary if adversary is not None else "none"],
            "stop": [stop],
            "max_rounds": [max_rounds if max_rounds is not None else "none"],
            "backend": [backend],
            "rng_mode": [rng_mode],
            "faults": [faults if faults is not None else "none"],
        },
    )
    # Imperative sweeps propagate errors: the SweepResult conversion
    # needs every record to carry data, so failure isolation is off.
    store = run_study(spec, on_error="raise")
    return sweep_result_from_records(
        spec.name if name is None else name,
        param_name,
        store.records(),
        predicted if predicted is not None else (lambda n: float("nan")),
        rng_mode=rng_mode,
    )


def _as_spec(spec) -> StudySpec:
    """Accept a StudySpec, a TOML path, or a plain dict."""
    if isinstance(spec, str):
        return load_spec(spec)
    if isinstance(spec, StudySpec):
        return spec
    if isinstance(spec, dict):
        return StudySpec.from_dict(spec)
    raise TypeError(
        f"spec must be a StudySpec, a TOML path or a dict; got "
        f"{type(spec).__name__}"
    )


def validate(spec) -> dict:
    """Compile-only validation of a study spec; nothing runs.

    Accepts the same spec forms as :func:`study` and returns
    :func:`repro.study.compile.validate_study`'s summary — ``name``,
    ``spec_hash``, ``num_cells``, ``repetitions`` and the per-cell
    ``(index, cell_id, label)`` listing.  Invalid specs raise the
    compiler's errors eagerly, for the *whole* grid.
    """
    return validate_study(_as_spec(spec))


def study(
    spec,
    *,
    store_path: "str | None" = None,
    resume: "bool | str" = False,
    max_cells: "int | None" = None,
    progress=None,
    on_error: str = "record",
    max_attempts: "int | None" = None,
    policy=None,
    deadline_s: "float | None" = None,
    workers: "int | None" = None,
    max_inflight: "int | None" = None,
    cache=None,
    stop_event=None,
) -> StudyStore:
    """Run a study from a :class:`StudySpec`, a TOML path, or a dict.

    A thin veneer over :func:`repro.study.run_study` that also accepts
    the on-disk spec forms: a path to a ``.toml`` file or a plain dict
    (e.g. parsed JSON).  See :func:`repro.study.runner.run_study` for
    ``store_path`` / ``resume`` / ``max_cells``, the supervision knobs
    ``on_error`` / ``policy`` / ``max_attempts`` / ``deadline_s``, the
    concurrency knobs ``workers`` / ``max_inflight`` (parallel cell
    scheduling, bit-for-bit equal to sequential), and ``cache`` (the
    shared content-addressed result cache; ``True`` / ``False`` / a
    directory) — in particular, resumed runs complete interrupted
    stores (journal and all) bit-for-bit and re-attempt failed or
    timed-out cells.  ``stop_event`` is the cooperative stop flag of
    :func:`~repro.study.runner.run_study`: setting it checkpoints the
    cell in flight and returns a store with ``interrupted=True``.
    """
    return run_study(
        _as_spec(spec),
        store_path=store_path,
        resume=resume,
        max_cells=max_cells,
        progress=progress,
        on_error=on_error,
        max_attempts=max_attempts,
        policy=policy,
        deadline_s=deadline_s,
        workers=workers,
        max_inflight=max_inflight,
        cache=cache,
        stop_event=stop_event,
    )
