"""A small name-based registry of the implemented processes.

Keeps the harness, CLI-style examples, and benchmarks free of import
boilerplate: ``make_process("3-majority")`` returns a fresh instance.
Registered names are stable public API.
"""

from __future__ import annotations

from typing import Callable, Dict

from .base import AgentProcess
from .graph_voter import LazyVoter
from .h_majority import HMajority
from .three_majority import ThreeMajority, ThreeMajorityResample
from .two_choices import TwoChoices
from .two_median import TwoMedian
from .undecided import UndecidedDynamics
from .voter import Voter

__all__ = ["PROCESS_FACTORIES", "make_process", "available_processes"]

PROCESS_FACTORIES: "Dict[str, Callable[[], AgentProcess]]" = {
    "voter": Voter,
    "2-choices": TwoChoices,
    "3-majority": ThreeMajority,
    "3-majority/resample": ThreeMajorityResample,
    "2-median": TwoMedian,
    "undecided-dynamics": UndecidedDynamics,
    "lazy-voter": LazyVoter,
}


def make_process(name: str, **kwargs) -> AgentProcess:
    """Instantiate a registered process by name.

    ``h-majority`` names take the form ``"h-majority:<h>"``; e.g.
    ``make_process("h-majority:5")`` builds 5-Majority.
    """
    if name.startswith("h-majority:"):
        h = int(name.split(":", 1)[1])
        return HMajority(h, **kwargs)
    try:
        factory = PROCESS_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown process {name!r}; available: {available_processes()}"
        ) from None
    return factory(**kwargs)


def available_processes() -> list:
    """Sorted list of registered process names (plus the h-majority scheme)."""
    return sorted(PROCESS_FACTORIES) + ["h-majority:<h>"]
