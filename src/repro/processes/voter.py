"""The Voter (Polling) process.

In every round each node samples one node independently and uniformly at
random and adopts that node's color.  Voter is the drift-free baseline of
the paper: its process function is the identity on fractions
(``α_i(c) = c_i / n``, Equation (1)), it needs ``Θ(n)`` rounds to reach
consensus from pairwise-distinct colors, and — crucially for the paper's
upper bound — it reduces from ``n`` to ``k`` colors in ``O((n/k) log n)``
rounds (Lemma 3), which by the domination of Lemma 2 carries over to
3-Majority.

Voter coincides with 1-Majority and 2-Majority (Section 5).
"""

from __future__ import annotations

import numpy as np

from ..core.ac_process import VoterFunction
from .base import ACAgentProcess, row_gather, sample_uniform_nodes

__all__ = ["Voter"]


class Voter(ACAgentProcess):
    """Agent-level Voter: adopt the color of one uniform sample."""

    samples_per_round = 1
    has_vectorized_ensemble = True
    has_sample_update = True

    def __init__(self):
        super().__init__(VoterFunction())

    def update(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = colors.shape[0]
        sampled = sample_uniform_nodes(n, 1, rng)[:, 0]
        return colors[sampled]

    def update_from_samples(
        self, own: np.ndarray, picks: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return picks[..., 0]

    def update_ensemble(
        self, colors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        reps, n = colors.shape
        sampled = rng.integers(0, n, size=(reps, n))
        return row_gather(colors, sampled)
