"""Process interfaces: agent-level dynamics and their AC count-level twins.

The paper's model (Section 2.1) is a complete graph of ``n`` anonymous
nodes evolving in synchronous rounds under Uniform Pull.  The library
offers two execution semantics:

* **agent-level** — the literal protocol: an ``n``-vector of colors, every
  node samples uniform nodes and applies its update rule.  This is the
  only faithful semantics for processes that are *not* anonymous consensus
  processes (2-Choices: keeping one's own color makes the next color
  depend on the current one).
* **count-level** — for AC-processes only: one round is a single draw from
  ``Mult(n, α(c))`` (Section 2.2), which is exact and far cheaper when the
  number of colors is small.

:class:`AgentProcess` is the common interface; :class:`ACAgentProcess`
additionally exposes the process function so engines can pick the cheaper
semantics, and so the framework modules can reason about dominance.
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.ac_process import ACProcessFunction
from ..core.configuration import Configuration

__all__ = [
    "AgentProcess",
    "ACAgentProcess",
    "row_gather",
    "sample_uniform_nodes",
    "counts_from_colors",
]


def sample_uniform_nodes(
    n: int, num_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform Pull on the complete graph: each node draws ``num_samples``
    node ids independently and uniformly at random (with replacement,
    self-samples allowed — matching ``α^{V}_i = c_i / n``).

    Returns an ``(n, num_samples)`` int array of sampled node ids.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    return rng.integers(0, n, size=(n, num_samples))


def counts_from_colors(colors: np.ndarray, num_slots: int) -> np.ndarray:
    """Count vector of a per-node color assignment."""
    return np.bincount(colors, minlength=num_slots).astype(np.int64)


def row_gather(colors: np.ndarray, sampled: np.ndarray) -> np.ndarray:
    """Gather ``colors[r, sampled[r]]`` row-wise via one flat ``take``.

    ``ndarray.take`` on the flattened matrix is several times faster than
    ``np.take_along_axis`` for the ensemble engines' ``(R, c·n)`` sample
    shapes (the ``O(R·n)`` gather is the agent-ensemble hot path), and it
    is a pure indexing change: the rng stream is untouched, so batched
    runs stay reproducible.
    """
    reps, n = colors.shape
    offsets = (np.arange(reps, dtype=sampled.dtype) * n)[:, None]
    return colors.ravel().take(sampled + offsets)


class AgentProcess(abc.ABC):
    """A synchronous update rule executed by every node in parallel.

    Subclasses implement :meth:`update`, mapping the current per-node color
    vector to the next one.  Updates must be *simultaneous*: every sample
    observes the pre-round colors.
    """

    #: Human-readable protocol name.
    name: str = "process"
    #: Number of uniform samples each node pulls per round.
    samples_per_round: int = 1
    #: Whether the process is an AC-process in the sense of Definition 1.
    is_anonymous: bool = False
    #: True when :meth:`update_ensemble` is a vectorized batched rule (one
    #: shared stream, a handful of array ops for all replicas).  The
    #: ensemble engine uses this to pick between the batched path and the
    #: exactness-preserving per-replica loop.
    has_vectorized_ensemble: bool = False
    #: True when :meth:`update_from_samples` expresses the node rule as a
    #: pure function of the node's own color and its uniform samples.  The
    #: asynchronous engines use it to update one node in ``O(samples)`` work
    #: instead of running the full synchronous round and discarding all but
    #: one entry.  Processes whose rule needs more than (own color, sampled
    #: colors) — graph topologies, auxiliary per-node state — leave it off.
    has_sample_update: bool = False
    #: True when :meth:`kernel_switch_law` is implemented — the
    #: switch-and-redistribute form consumed by the fused kernels
    #: (:mod:`repro.engine.kernels`).
    has_kernel_form: bool = False
    #: True when dead colors stay dead under this process (``q_i = 0``
    #: whenever ``c_i = 0``), so the fused kernels may compact zero-support
    #: slots out of the counts matrix.  All uniform-pull rules implemented
    #: here qualify (a node can only adopt a color it sampled); a process
    #: with spontaneous mutation would not.
    kernel_absorbing_support: bool = False

    @abc.abstractmethod
    def update(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One synchronous round; returns the next color vector.

        ``colors`` is an ``n``-vector of non-negative color ids.  The input
        array must not be mutated.
        """

    def update_from_samples(
        self, own: np.ndarray, picks: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """The node rule applied to pre-drawn uniform samples.

        ``own`` holds the updating nodes' current colors (any shape) and
        ``picks`` their sampled colors with a trailing axis of length
        :attr:`samples_per_round`; the result has ``own``'s shape.  Only
        meaningful when :attr:`has_sample_update` is set — the asynchronous
        engines vectorize one-tick-per-replica updates through it.
        """
        raise NotImplementedError(
            f"{self.name} does not expose a per-sample update rule"
        )

    def update_node(
        self, colors: np.ndarray, node: int, rng: np.random.Generator
    ) -> int:
        """The next color of ``node`` alone under one asynchronous tick.

        Processes with :attr:`has_sample_update` draw just the node's
        :attr:`samples_per_round` samples (``O(1)`` work); the generic
        fallback runs the full synchronous :meth:`update` and keeps the
        node's entry — correct for every process, since updates depend only
        on the node's own samples, but ``O(n)`` per tick.
        """
        if self.has_sample_update:
            ids = rng.integers(0, colors.shape[0], size=self.samples_per_round)
            return self.update_from_samples(colors[node], colors[ids], rng)
        return self.update(colors, rng)[node]

    def update_ensemble(
        self, colors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One synchronous round for an ``(R, n)`` ensemble of replicas.

        Vectorized overrides (3-Majority, 2-Choices, Voter, …) set
        :attr:`has_vectorized_ensemble` and advance all replicas with a few
        array operations; replicas remain independent because every row
        consumes fresh variates from the shared stream.

        The base implementation loops :meth:`update` over the replica rows
        with the single shared generator — a convenience for stepping a
        batch directly.  Note the ensemble *engine* does not call it for
        non-vectorized processes: :func:`repro.engine.ensemble.run_agent_ensemble`
        falls back to its own per-replica loop with spawned child
        generators, which reproduces sequential runs bit-for-bit.
        """
        return np.stack(
            [self.update(colors[r], rng) for r in range(colors.shape[0])]
        )

    def kernel_switch_law(
        self, counts: np.ndarray
    ) -> "tuple[np.ndarray | None, np.ndarray]":
        """The one-round law in switch-and-redistribute form.

        For an ``(R, k)`` counts matrix (each row summing to ``n``), return
        ``(sigma, q)`` where, conditioned on the current fractions
        ``x = c / n``:

        * ``sigma`` — ``(R, k)`` per-class *switch* probability: each node
          of class ``i`` abandons its color independently with probability
          ``sigma[r, i]``.  ``None`` means every node redraws (``σ ≡ 1``).
        * ``q`` — ``(R, k)`` *destination* law: every switching node picks
          its new color iid from ``q[r]`` (rows sum to 1).

        On the complete graph under Uniform Pull, each node's samples are
        iid ``x`` and nodes act independently given ``x``, so any rule of
        the form "switch with a class-dependent probability, land by a
        shared law" is *exactly* lumped by
        ``c' = c − Bin(c, σ) + Mult(Σ switchers, q)`` — the counts chain
        the fused kernels run (:mod:`repro.engine.kernels.sync`).  Only
        processes whose agent dynamics genuinely factor this way may set
        :attr:`has_kernel_form`.
        """
        raise NotImplementedError(
            f"{self.name} has no switch-and-redistribute kernel form"
        )

    def kernel_supported(self, config: Configuration) -> bool:
        """Whether the fused kernels may run this process from ``config``.

        Defaults to :attr:`has_kernel_form`; processes whose law is only
        tractable for narrow configurations (enumerated ``α``) override
        with their width limits.
        """
        return self.has_kernel_form

    def initial_colors(self, config: Configuration) -> np.ndarray:
        """Expand a configuration into a per-node assignment for this process.

        Processes with auxiliary per-node state (e.g. Undecided dynamics)
        may override to initialise it.
        """
        return config.to_assignment()

    def configuration_of(self, colors: np.ndarray, num_slots: int) -> Configuration:
        """Project a color vector back to a :class:`Configuration`."""
        return Configuration(counts_from_colors(colors, num_slots))

    def has_converged(self, colors: np.ndarray) -> bool:
        """Default consensus predicate: all nodes share one color."""
        return bool(np.all(colors == colors[0]))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ACAgentProcess(AgentProcess):
    """An agent-level process that is also an AC-process.

    Exposes the matching :class:`ACProcessFunction`, enabling

    * exact count-level simulation (``Mult(n, α(c))`` per round), and
    * participation in the dominance / coupling framework.

    The test-suite cross-validates the two semantics against each other:
    for an AC-process the count vector of the agent-level update is
    *identically distributed* to the count-level multinomial draw.
    """

    is_anonymous = True
    # Every AC-process is trivially in switch-and-redistribute form:
    # all nodes redraw (σ ≡ 1) and land by α(x) — Definition 1 verbatim.
    has_kernel_form = True
    kernel_absorbing_support = True

    def __init__(self, process_function: ACProcessFunction):
        self._function = process_function
        self.name = process_function.name

    @property
    def process_function(self) -> ACProcessFunction:
        """The process function ``α`` of Definition 1."""
        return self._function

    def supports_count_backend(self, config: Configuration) -> bool:
        """Whether the exact count-level chain is practical from ``config``.

        Most AC-processes have closed-form ``α`` and always return True;
        processes whose exact ``α`` requires enumeration (h-Majority)
        override this with their width limits.
        """
        return True

    def kernel_switch_law(
        self, counts: np.ndarray
    ) -> "tuple[np.ndarray | None, np.ndarray]":
        """``σ ≡ 1``, ``q = α(x)`` — the AC one-round law (Definition 1)."""
        return None, self._function.probabilities_batch(counts)

    def kernel_supported(self, config: Configuration) -> bool:
        """Kernel tractability coincides with count-chain tractability:
        both need ``α`` evaluable at the configuration's width."""
        return self.has_kernel_form and self.supports_count_backend(config)

    def adoption_probabilities(self, config: Configuration) -> np.ndarray:
        """``α(c)`` for the given configuration."""
        return self._function.probabilities_for(config)

    def step_counts(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Exact count-level round (delegates to the process function)."""
        return self._function.step_counts(counts, rng)

    def step_counts_ensemble(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Exact count-level round for an ``(R, k)`` ensemble of replicas.

        Delegates to the process function's batched sampler: row-wise
        ``α`` (vectorized where a closed form exists) followed by one
        broadcast multinomial draw for the whole ensemble.
        """
        return self._function.step_counts_batch(counts, rng)
