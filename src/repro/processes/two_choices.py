"""The 2-Choices process — "ignore".

Each node samples two nodes independently and uniformly at random.  If the
two samples agree, the node adopts their color; otherwise it *ignores*
them and keeps its own color.

2-Choices is **not** an anonymous consensus process: a node's next color
depends on its current color (the keep branch), so its one-round law is
not a single multinomial and Definition 1 does not apply.  This is the
crux of the paper's separation: 2-Choices has exactly the same *expected*
one-round behaviour as 3-Majority (footnote 2),

    E[x_i'] = x_i² + (1 − Σ_j x_j²) · x_i,

yet from the n-color configuration it needs ``Ω(n / log n)`` rounds to let
any color reach support ``γ log n`` (Theorem 5), because a node can only
*switch* when two samples collide — an event of probability ``Σ_j x_j²``,
which is ``1/n`` under full symmetry.

The module also exposes :class:`TwoChoicesBirthUpper` — the paper's
majorizing birth process ``P`` from the proof of Theorem 5
(``P(0) = ℓ``, ``P(t+1) = P(t) + Binomial(n, (ℓ'/n)²)``) — so the
test-suite and the E2 bench can check the coupling argument itself, not
just its conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.configuration import Configuration
from .base import AgentProcess, row_gather, sample_uniform_nodes

__all__ = ["TwoChoices", "TwoChoicesBirthUpper", "two_choices_expected_fractions"]


class TwoChoices(AgentProcess):
    """Agent-level 2-Choices: adopt iff both samples agree, else keep."""

    name = "2-choices"
    samples_per_round = 2
    is_anonymous = False
    has_vectorized_ensemble = True
    has_sample_update = True
    has_kernel_form = True
    kernel_absorbing_support = True

    def update(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = colors.shape[0]
        sampled = sample_uniform_nodes(n, 2, rng)
        first = colors[sampled[:, 0]]
        second = colors[sampled[:, 1]]
        return np.where(first == second, first, colors)

    def update_from_samples(
        self, own: np.ndarray, picks: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.where(picks[..., 0] == picks[..., 1], picks[..., 0], own)

    def update_ensemble(
        self, colors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        reps, n = colors.shape
        sampled = rng.integers(0, n, size=(reps, 2 * n))
        picks = row_gather(colors, sampled).reshape(reps, n, 2)
        return self.update_from_samples(colors, picks, rng)

    def kernel_switch_law(
        self, counts: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """2-Choices in switch-and-redistribute form.

        A node switches iff its two samples agree — probability
        ``σ = Σ_j x_j² = ‖x‖²`` regardless of its own color — and the
        agreed color is ``j`` with probability ``x_j²``, so switchers land
        by ``q_j = x_j² / ‖x‖²``.  Nodes act independently given ``x``,
        which is exactly the factorisation :class:`AgentProcess.kernel_switch_law`
        requires; 2-Choices not being an AC-process (the keep branch) is
        irrelevant at the counts level, because the *switch* event does not
        depend on the node's own color — only survival does, and survival
        is what ``c − Bin(c, σ)`` tracks per class.
        """
        x = counts / counts.sum(axis=1, keepdims=True)
        x_sq = x * x
        norm_sq = x_sq.sum(axis=1, keepdims=True)
        sigma = np.broadcast_to(norm_sq, counts.shape)
        return sigma, x_sq / norm_sq

    def expected_next_fractions(self, config: Configuration) -> np.ndarray:
        """Exact expected next fraction vector (footnote 2's identity)."""
        return two_choices_expected_fractions(config.fractions())


def two_choices_expected_fractions(x: np.ndarray) -> np.ndarray:
    """``E[x_i'] = x_i² + (1 − ‖x‖₂²) x_i`` — identical to 3-Majority's.

    Derivation: a node ends the round with color ``i`` iff (a) both samples
    show ``i`` (probability ``x_i²``) or (b) the samples disagree
    (probability ``1 − ‖x‖₂²``) and the node already has color ``i``
    (fraction ``x_i``).
    """
    x = np.asarray(x, dtype=float)
    norm_sq = float(np.dot(x, x))
    return x**2 + (1.0 - norm_sq) * x


@dataclass
class TwoChoicesBirthUpper:
    """The coupled upper process ``P`` from the proof of Theorem 5.

    Tracks a single color ``i`` whose support starts at ``ℓ``.  While the
    true support stays below ``ℓ' = max(2ℓ, γ log n)``, every node's
    probability of seeing color ``i`` twice is at most ``p = (ℓ'/n)²``, so
    the recruitment per round is stochastically dominated by
    ``Binomial(n, p)`` and the paper sets

        P(0) = ℓ,   P(t+1) = P(t) + Binomial(n, p).

    ``P`` never loses support (the true process can), making it a clean
    majorizer amenable to multi-round Chernoff bounds.
    """

    n: int
    ell: int
    gamma: float = 18.0

    def __post_init__(self):
        if self.n <= 0:
            raise ValueError("n must be positive")
        if not 0 <= self.ell <= self.n:
            raise ValueError("initial support must lie in [0, n]")
        if self.gamma <= 0:
            raise ValueError("gamma must be positive")

    @property
    def ell_prime(self) -> int:
        """The threshold ``ℓ' = max(2ℓ, γ log n)``."""
        return int(max(2 * self.ell, np.ceil(self.gamma * np.log(max(self.n, 2)))))

    @property
    def collision_probability(self) -> float:
        """``p = (ℓ'/n)²`` — per-node chance of sampling color ``i`` twice."""
        return (self.ell_prime / self.n) ** 2

    @property
    def round_budget(self) -> int:
        """The theorem's horizon ``t₀ = n / (γ ℓ')`` (floored, at least 1)."""
        return max(1, int(self.n / (self.gamma * self.ell_prime)))

    def run(self, rounds: int, rng: np.random.Generator) -> np.ndarray:
        """Simulate ``P`` for ``rounds`` rounds; returns the trajectory.

        Entry ``t`` of the result is ``P(t)`` (so the array has
        ``rounds + 1`` entries and starts at ``ℓ``).
        """
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        increments = rng.binomial(self.n, self.collision_probability, size=rounds)
        trajectory = np.empty(rounds + 1, dtype=np.int64)
        trajectory[0] = self.ell
        np.cumsum(increments, out=trajectory[1:])
        trajectory[1:] += self.ell
        return trajectory

    def first_passage(self, rng: np.random.Generator, max_rounds: int) -> int:
        """First ``t`` with ``P(t) ≥ ℓ'`` (or ``max_rounds + 1`` if none)."""
        value = self.ell
        threshold = self.ell_prime
        if value >= threshold:
            return 0
        p = self.collision_probability
        for t in range(1, max_rounds + 1):
            value += int(rng.binomial(self.n, p))
            if value >= threshold:
                return t
        return max_rounds + 1
