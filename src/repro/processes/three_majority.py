"""The 3-Majority process — "comply".

Each node samples three nodes independently and uniformly at random.  If
some color appears in at least two samples, the node adopts it; otherwise
it adopts the color of one of the samples.  The paper states the
tie-break as a uniformly random sample and notes (footnote 1) that a
*fixed* sample induces the same adoption law — the samples are
exchangeable — so this implementation adopts the third sample: the rule
is then *draw-count-stable* (exactly ``3n`` draws per round, tie or no
tie), which keeps every backend, the fused wavefront kernel included,
on identical rng streams.

The paper's alternative formulation makes the relation to 2-Choices
explicit: sample two nodes; if they agree, adopt ("2-Choices branch");
otherwise sample a third node and adopt *its* color ("Voter branch") —
complying with the fresh sample instead of ignoring the disagreement.
Both formulations induce the same process function (Equation (2)):

    α_i(c) = x_i² + (1 − ‖x‖₂²) · x_i,   x = c / n,

and the paper's headline upper bound (Theorem 4) shows the process reaches
consensus from *any* configuration w.h.p. in ``O(n^{3/4} log^{7/8} n)``
rounds.

Both the classic three-sample rule and the resample formulation are
implemented; the test-suite checks they agree in distribution (they are
the same process).
"""

from __future__ import annotations

import numpy as np

from ..core.ac_process import ThreeMajorityFunction
from .base import ACAgentProcess, row_gather, sample_uniform_nodes

__all__ = ["ThreeMajority", "ThreeMajorityResample"]


class ThreeMajority(ACAgentProcess):
    """Agent-level 3-Majority via the literal three-sample plurality rule."""

    samples_per_round = 3
    has_vectorized_ensemble = True
    has_sample_update = True

    def __init__(self):
        super().__init__(ThreeMajorityFunction())

    def update(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = colors.shape[0]
        sampled = sample_uniform_nodes(n, 3, rng)
        picks = colors[sampled]
        return self.update_from_samples(colors, picks, rng)

    def update_from_samples(
        self, own: np.ndarray, picks: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        a, b, c = picks[..., 0], picks[..., 1], picks[..., 2]
        # A color seen at least twice wins; with all three distinct, the
        # *third* sample is adopted.  Footnote 1: the three samples are
        # exchangeable, so a fixed sample's color has exactly the uniform
        # tie-break's marginal law — the adoption law is Equation (2)
        # either way.  Taking the fixed sample makes the rule draw-free
        # (3n draws per round, tie or no tie), which is what lets every
        # engine — including the wavefront kernel, whose draw *shapes*
        # differ — consume identical streams and stay bit-for-bit.
        return np.where(a == b, a, np.where(b == c, b, np.where(a == c, a, c)))

    def update_ensemble(
        self, colors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        reps, n = colors.shape
        sampled = rng.integers(0, n, size=(reps, 3 * n))
        picks = row_gather(colors, sampled).reshape(reps, n, 3)
        return self.update_from_samples(colors, picks, rng)


class ThreeMajorityResample(ACAgentProcess):
    """3-Majority in the paper's alternative "2-Choices + Voter" form.

    Sample two nodes; if they agree adopt their color, otherwise sample a
    *third* node and adopt its color.  Identical in distribution to
    :class:`ThreeMajority`: each node's adoption law is

        α_i = P[pair agrees on i] + P[pair disagrees] · P[third is i]
            = x_i² + (1 − ‖x‖₂²) · x_i,

    which is exactly Equation (2), and since both variants are AC-processes
    (adoptions independent across nodes with common law ``α``) equal
    process functions imply equal process distributions.  Note the
    *conditional* behaviour given the samples differs between the variants;
    only the marginal adoption law — which is all that defines an
    AC-process — coincides.
    """

    name = "3-majority/resample"
    samples_per_round = 3
    has_vectorized_ensemble = True
    has_sample_update = True

    def __init__(self):
        super().__init__(ThreeMajorityFunction())
        self.name = "3-majority/resample"

    def update(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = colors.shape[0]
        sampled = sample_uniform_nodes(n, 3, rng)
        first = colors[sampled[:, 0]]
        second = colors[sampled[:, 1]]
        third = colors[sampled[:, 2]]
        return np.where(first == second, first, third)

    def update_from_samples(
        self, own: np.ndarray, picks: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.where(
            picks[..., 0] == picks[..., 1], picks[..., 0], picks[..., 2]
        )

    def update_ensemble(
        self, colors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        reps, n = colors.shape
        sampled = rng.integers(0, n, size=(reps, 3 * n))
        picks = row_gather(colors, sampled).reshape(reps, n, 3)
        return self.update_from_samples(colors, picks, rng)
