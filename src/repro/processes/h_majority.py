"""General h-Majority: plurality of ``h`` uniform samples, random tie-break.

Section 5 of the paper conjectures a hierarchy: ``(h+1)``-Majority should
be stochastically faster than ``h``-Majority (Conjecture 1).  Lemma 2
settles ``h ∈ {1, 2, 3}`` (Voter equals 1- and 2-Majority), and
Appendix B shows the majorization machinery alone cannot settle the rest.
This module provides the agent-level process for arbitrary ``h`` so the
conjecture can at least be probed empirically (experiment E9).

The update rule generalising 3-Majority: draw ``h`` uniform samples; adopt
a color attaining the maximum multiplicity among the samples, breaking
ties uniformly at random among the tied *colors*.  For ``h = 3`` the tied
colors of an all-distinct draw are exactly the three sampled colors, so
this coincides with "adopt a random sample" and hence with 3-Majority;
for ``h ≤ 2`` every draw ties, giving Voter.
"""

from __future__ import annotations

import numpy as np

from ..core.ac_process import HMajorityFunction
from .base import ACAgentProcess, sample_uniform_nodes

__all__ = ["HMajority", "plurality_with_random_tie_break"]


def plurality_with_random_tie_break(
    samples: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Row-wise plurality color with uniform tie-break, fully vectorised.

    ``samples`` is an ``(n, h)`` integer array; returns an ``n``-vector.
    The implementation sorts each row, computes run lengths (multiplicity
    of each distinct color), finds the maximal runs, and picks a uniform
    maximal run per row via random scores — ``O(n · h log h)`` and no
    Python-level loop over nodes.
    """
    if samples.ndim != 2:
        raise ValueError("samples must be an (n, h) array")
    n, h = samples.shape
    if h == 1:
        return samples[:, 0].copy()
    ordered = np.sort(samples, axis=1)
    # run_id[r, j]: index of the run (distinct color) that position j of
    # row r belongs to; runs are numbered 0..h-1 from the left.
    new_run = np.ones((n, h), dtype=np.int64)
    new_run[:, 1:] = (ordered[:, 1:] != ordered[:, :-1]).astype(np.int64)
    run_id = np.cumsum(new_run, axis=1) - 1
    # Multiplicity of each run.
    run_lengths = np.zeros((n, h), dtype=np.int64)
    rows = np.repeat(np.arange(n), h)
    np.add.at(run_lengths, (rows, run_id.ravel()), 1)
    max_len = run_lengths.max(axis=1, keepdims=True)
    # Random scores break ties uniformly among maximal runs.
    scores = rng.random((n, h))
    scores[run_lengths != max_len] = -1.0
    chosen_run = np.argmax(scores, axis=1)
    # Map the chosen run back to its color: first position of that run.
    first_position = np.argmax(run_id == chosen_run[:, None], axis=1)
    return ordered[np.arange(n), first_position]


class HMajority(ACAgentProcess):
    """Agent-level h-Majority for arbitrary ``h ≥ 1``.

    The exact process function (used by the count-level engine and the
    dominance framework) enumerates sample compositions and is only
    practical for narrow configurations; the agent-level update here works
    for any number of colors.
    """

    def __init__(self, h: int, max_support_colors: int = 12):
        if h < 1:
            raise ValueError("h must be at least 1")
        super().__init__(HMajorityFunction(h, max_support_colors=max_support_colors))
        self.h = int(h)
        self.samples_per_round = self.h

    def update(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = colors.shape[0]
        sampled = sample_uniform_nodes(n, self.h, rng)
        sample_colors = colors[sampled]
        return plurality_with_random_tie_break(sample_colors, rng)

    def supports_count_backend(self, config) -> bool:
        """Exact ``α`` enumerates compositions: only for narrow configurations."""
        if self.h <= 2:
            return True  # Voter-equivalent closed form.
        limit = self.process_function.max_support_colors
        return config.num_colors <= limit
