"""The Undecided-State dynamics [BCN+15] (related work, §1.1).

Each node samples one uniform node per round.  A *decided* node that sees
a different (decided) color becomes **undecided**; an undecided node
adopts the color of its sample (staying undecided if the sample is).
With a large enough initial bias this reaches plurality consensus w.h.p.
in ``O(k log n)`` rounds.

The paper's cautionary remark — reproduced as experiment E12 — is that
from the ``k = n`` all-singletons configuration the dynamics can collapse:
with constant probability essentially *all* nodes become undecided before
any real color can spread, after which no real color remains in the
population and consensus on a valid color is impossible.  The
implementation therefore tracks the number of undecided nodes and exposes
:meth:`UndecidedDynamics.is_dead` for the collapse event.
"""

from __future__ import annotations

import numpy as np

from ..core.configuration import Configuration
from .base import AgentProcess, sample_uniform_nodes

__all__ = ["UndecidedDynamics", "UNDECIDED"]

#: Sentinel color id for the undecided state.  Negative, so it can never
#: collide with a real color id.
UNDECIDED = -1


class UndecidedDynamics(AgentProcess):
    """Agent-level Undecided-State dynamics with one sample per round.

    The color vector uses :data:`UNDECIDED` (= -1) for undecided nodes.
    """

    name = "undecided-dynamics"
    samples_per_round = 1
    is_anonymous = False

    def update(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = colors.shape[0]
        sampled = sample_uniform_nodes(n, 1, rng)[:, 0]
        sample_colors = colors[sampled]
        out = colors.copy()
        undecided_mask = colors == UNDECIDED
        # Undecided nodes copy whatever they see (possibly staying undecided).
        out[undecided_mask] = sample_colors[undecided_mask]
        # Decided nodes seeing a different decided color become undecided.
        conflict = (
            ~undecided_mask
            & (sample_colors != UNDECIDED)
            & (sample_colors != colors)
        )
        out[conflict] = UNDECIDED
        return out

    def has_converged(self, colors: np.ndarray) -> bool:
        """Consensus requires a single *real* color and nobody undecided."""
        first = colors[0]
        if first == UNDECIDED:
            return self.is_dead(colors)
        return bool(np.all(colors == first))

    @staticmethod
    def is_dead(colors: np.ndarray) -> bool:
        """True iff every node is undecided — no valid consensus is reachable."""
        return bool(np.all(colors == UNDECIDED))

    @staticmethod
    def undecided_fraction(colors: np.ndarray) -> float:
        """Fraction of currently undecided nodes."""
        return float(np.mean(colors == UNDECIDED))

    def configuration_of(self, colors: np.ndarray, num_slots: int) -> Configuration:
        """Project decided nodes to a configuration; undecided get a slot.

        The returned configuration appends one extra slot counting the
        undecided nodes, so totals still sum to ``n``.
        """
        decided = colors[colors != UNDECIDED]
        counts = np.bincount(decided, minlength=num_slots).astype(np.int64)
        undecided_count = int(np.sum(colors == UNDECIDED))
        return Configuration(np.concatenate([counts, [undecided_count]]))
