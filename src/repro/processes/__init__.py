"""Update rules: Voter, 2-Choices, 3-Majority, h-Majority, and the foils.

Each process is an :class:`~repro.processes.base.AgentProcess` — a
synchronous, uniform-pull update rule on the complete graph.  Processes
that are AC-processes (Definition 1) additionally derive from
:class:`~repro.processes.base.ACAgentProcess` and expose their exact
process function for count-level simulation and the dominance framework.
"""

from .base import ACAgentProcess, AgentProcess, counts_from_colors, sample_uniform_nodes
from .graph_voter import GraphVoter, LazyVoter
from .h_majority import HMajority, plurality_with_random_tie_break
from .registry import PROCESS_FACTORIES, available_processes, make_process
from .three_majority import ThreeMajority, ThreeMajorityResample
from .two_choices import TwoChoices, TwoChoicesBirthUpper, two_choices_expected_fractions
from .two_median import TwoMedian
from .undecided import UNDECIDED, UndecidedDynamics
from .voter import Voter

__all__ = [
    "ACAgentProcess",
    "AgentProcess",
    "GraphVoter",
    "HMajority",
    "PROCESS_FACTORIES",
    "ThreeMajority",
    "ThreeMajorityResample",
    "TwoChoices",
    "TwoChoicesBirthUpper",
    "LazyVoter",
    "TwoMedian",
    "UNDECIDED",
    "UndecidedDynamics",
    "Voter",
    "available_processes",
    "counts_from_colors",
    "make_process",
    "plurality_with_random_tie_break",
    "sample_uniform_nodes",
    "two_choices_expected_fractions",
]
