"""Voter on arbitrary graphs, and the lazy variant of [BGKMT16].

The paper's processes live on the complete graph, but two pieces of its
toolbox are graph-general: the Voter process and the Lemma-4 duality.
:class:`GraphVoter` runs Voter on any :class:`~repro.graphs.graph.SampleableGraph`
(on :class:`~repro.graphs.graph.CompleteGraph` it coincides with
:class:`~repro.processes.voter.Voter`).

:class:`LazyVoter` implements the lazy variant that [BGKMT16]'s analysis
*requires* (each node, with probability 1/2, skips its update).  The
paper's Section 3.2 points out that its own Lemma-3 proof needs no
laziness; the laziness ablation bench quantifies the cost of the lazy
variant (a factor ≈ 2 slowdown on the complete graph) and confirms both
variants obey the same `n/k` reduction law.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import CompleteGraph, SampleableGraph
from .base import AgentProcess

__all__ = ["GraphVoter", "LazyVoter"]


class GraphVoter(AgentProcess):
    """Voter with pulls drawn from a graph's neighborhood structure.

    Anonymity in the sense of Definition 1 holds only on the complete
    graph (elsewhere a node's next color depends on *where* it sits), so
    this is a plain :class:`AgentProcess`; the complete-graph special
    case is available as the AC-process :class:`~repro.processes.voter.Voter`.
    """

    samples_per_round = 1
    is_anonymous = False

    def __init__(self, graph: SampleableGraph):
        self.graph = graph
        self.name = f"voter@{type(graph).__name__.lower()}(n={graph.num_nodes})"

    def update(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if colors.shape[0] != self.graph.num_nodes:
            raise ValueError(
                f"color vector has {colors.shape[0]} entries; graph has "
                f"{self.graph.num_nodes} nodes"
            )
        nodes = np.arange(self.graph.num_nodes, dtype=np.int64)
        pulled = self.graph.sample_neighbors(nodes, rng)
        return colors[pulled]


class LazyVoter(AgentProcess):
    """Lazy Voter: with probability ``laziness`` a node keeps its color.

    [BGKMT16] analyse this variant (their proof needs the laziness);
    the paper's own Voter bound (Lemma 3) does not.  Included for the
    laziness ablation: on the complete graph the lazy chain is the Voter
    chain slowed down by roughly ``1 / (1 − laziness)``.
    """

    samples_per_round = 1
    is_anonymous = False  # keep-branch ties the next color to the current one

    def __init__(self, graph: "SampleableGraph | None" = None, laziness: float = 0.5):
        if not 0.0 <= laziness < 1.0:
            raise ValueError("laziness must lie in [0, 1)")
        self.graph = graph
        self.laziness = float(laziness)
        where = f"@{type(graph).__name__.lower()}" if graph is not None else ""
        self.name = f"lazy-voter{where}(p={laziness:g})"

    def update(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = colors.shape[0]
        graph = self.graph if self.graph is not None else CompleteGraph(n)
        if graph.num_nodes != n:
            raise ValueError("graph size does not match the color vector")
        nodes = np.arange(n, dtype=np.int64)
        pulled = colors[graph.sample_neighbors(nodes, rng)]
        keep = rng.random(n) < self.laziness
        return np.where(keep, colors, pulled)
