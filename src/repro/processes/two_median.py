"""The 2-Median process of Doerr et al. [DGM+11] (related work, §1.1).

Every node updates its color — here a *numerical value* — to the median of
its own value and the values of two uniformly sampled nodes.  Without any
initial bias this reaches consensus w.h.p. in
``O(log k · log log n + log n)`` rounds, far faster than 2-Choices or
3-Majority without bias.

The paper includes it as a foil: the speed is bought with a *total order*
on the color space (our other processes only test colors for identity),
and 2-Median is not self-stabilising for Byzantine agreement because it
cannot guarantee validity — the median of two corrupted extremes can be a
value no honest node ever supported.  Experiment E12 demonstrates both
sides: the speed, and the validity failure under an adversary that plants
values outside the honest range.
"""

from __future__ import annotations

import numpy as np

from .base import AgentProcess, sample_uniform_nodes

__all__ = ["TwoMedian"]


class TwoMedian(AgentProcess):
    """Agent-level 2-Median: move to the median of {own, sample₁, sample₂}.

    Not an AC-process (the own value enters the median), and not
    color-anonymous (requires ordered values), so only the agent-level
    semantics exists.
    """

    name = "2-median"
    samples_per_round = 2
    is_anonymous = False

    def update(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = colors.shape[0]
        sampled = sample_uniform_nodes(n, 2, rng)
        first = colors[sampled[:, 0]]
        second = colors[sampled[:, 1]]
        stacked = np.stack([colors, first, second], axis=0)
        return np.median(stacked, axis=0).astype(colors.dtype)

    def has_converged(self, colors: np.ndarray) -> bool:
        """Consensus on a single numerical value.

        2-Median can also *stall* in a two-value deadlock only when the two
        values are adjacent integers with specific counts; the engine's
        round limits catch pathological cases, and the standard consensus
        predicate is appropriate for the experiments reproduced here.
        """
        return bool(np.all(colors == colors[0]))
